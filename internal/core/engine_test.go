package core

import (
	"math"
	"testing"

	"simrankpp/internal/clickgraph"
)

const tol = 1e-12

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// mustRunDense is a test helper running the dense engine.
func mustRunDense(t *testing.T, g *clickgraph.Graph, cfg Config) *Result {
	t.Helper()
	r, err := RunDense(g, cfg)
	if err != nil {
		t.Fatalf("RunDense: %v", err)
	}
	return r
}

// mustRun is a test helper running the sparse engine.
func mustRun(t *testing.T, g *clickgraph.Graph, cfg Config) *Result {
	t.Helper()
	r, err := Run(g, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func querySimByName(t *testing.T, r *Result, q1, q2 string) float64 {
	t.Helper()
	i, ok := r.Graph.QueryID(q1)
	if !ok {
		t.Fatalf("query %q not in graph", q1)
	}
	j, ok := r.Graph.QueryID(q2)
	if !ok {
		t.Fatalf("query %q not in graph", q2)
	}
	return r.QuerySim(i, j)
}

// Table 3 of the paper: plain SimRank on the Figure 4 graphs, C1=C2=0.8,
// per-iteration values. These are the paper's exact numbers.
func TestTable3SimrankIterations(t *testing.T) {
	wantK22 := []float64{0.4, 0.56, 0.624, 0.6496, 0.65984, 0.663936, 0.6655744}
	k22 := clickgraph.Fig4K22()
	k12 := clickgraph.Fig4K12()
	for k := 1; k <= 7; k++ {
		cfg := DefaultConfig()
		cfg.Iterations = k
		r := mustRunDense(t, k22, cfg)
		got := querySimByName(t, r, "camera", "digital camera")
		if !almostEqual(got, wantK22[k-1], tol) {
			t.Errorf("K2,2 iteration %d: sim(camera,digital camera) = %.10f, want %.10f", k, got, wantK22[k-1])
		}
		r12 := mustRunDense(t, k12, cfg)
		got12 := querySimByName(t, r12, "pc", "camera")
		if !almostEqual(got12, 0.8, tol) {
			t.Errorf("K1,2 iteration %d: sim(pc,camera) = %.10f, want 0.8", k, got12)
		}
	}
}

// Table 4 of the paper: evidence-based SimRank on the same graphs.
func TestTable4EvidenceIterations(t *testing.T) {
	wantK22 := []float64{0.3, 0.42, 0.468, 0.4872, 0.49488, 0.497952, 0.4991808}
	k22 := clickgraph.Fig4K22()
	k12 := clickgraph.Fig4K12()
	for k := 1; k <= 7; k++ {
		cfg := DefaultConfig().WithVariant(Evidence)
		cfg.Iterations = k
		r := mustRunDense(t, k22, cfg)
		got := querySimByName(t, r, "camera", "digital camera")
		if !almostEqual(got, wantK22[k-1], tol) {
			t.Errorf("K2,2 iteration %d: evidence sim = %.10f, want %.10f", k, got, wantK22[k-1])
		}
		r12 := mustRunDense(t, k12, cfg)
		got12 := querySimByName(t, r12, "pc", "camera")
		if !almostEqual(got12, 0.4, tol) {
			t.Errorf("K1,2 iteration %d: evidence sim = %.10f, want 0.4", k, got12)
		}
	}
}

// Theorem 6.2(i): on K_{m,2} vs K_{n,2} with m < n, plain SimRank scores
// the smaller graph's pair strictly higher at every iteration.
func TestTheorem62SimrankAnomaly(t *testing.T) {
	for _, mn := range [][2]int{{1, 2}, {2, 3}, {2, 5}, {3, 8}} {
		m, n := mn[0], mn[1]
		gm := clickgraph.CompleteBipartite(m, 2)
		gn := clickgraph.CompleteBipartite(n, 2)
		for k := 1; k <= 10; k++ {
			cfg := DefaultConfig()
			cfg.Iterations = k
			// The studied pair is the two ads (the 2-node side).
			rm := mustRunDense(t, gm, cfg)
			rn := mustRunDense(t, gn, cfg)
			am, _ := gm.AdID("a0")
			bm, _ := gm.AdID("a1")
			an, _ := gn.AdID("a0")
			bn, _ := gn.AdID("a1")
			sm, sn := rm.AdSim(am, bm), rn.AdSim(an, bn)
			if !(sm > sn) {
				t.Errorf("K%d,2 vs K%d,2 at k=%d: want sim %f > %f", m, n, k, sm, sn)
			}
		}
	}
}

// Theorem 7.1: with C1, C2 > 1/2, evidence-based SimRank reverses the
// anomaly for k > 1: the pair with more common neighbors scores higher.
//
// NOTE: the paper states this for all m < n and all k > 1, but its
// appendix only proves the K1,2 vs K2,2 case (Theorem B.2) and asserts the
// general case by "similar arguments" (Theorem B.3). As stated the claim
// is false in two ways, both recorded by the counterexample tests below:
// at small k the larger graph's score has not yet accumulated (K1,2 vs
// K8,2 violates it at k = 2), and for m >= 3 the evidence factor has
// already saturated so even the limits violate it (K3,2 vs K8,2).
//
// Here we verify what does hold: the proved (1, 2) case at every k > 1,
// and the limiting inequality for m ∈ {1, 2} against larger n.
func TestTheorem71EvidenceFixesAnomaly(t *testing.T) {
	evidenceSimKm2 := func(t *testing.T, m, k int) float64 {
		t.Helper()
		g := clickgraph.CompleteBipartite(m, 2)
		cfg := DefaultConfig().WithVariant(Evidence)
		cfg.Iterations = k
		r := mustRunDense(t, g, cfg)
		a, _ := g.AdID("a0")
		b, _ := g.AdID("a1")
		return r.AdSim(a, b)
	}
	for k := 2; k <= 10; k++ {
		s1, s2 := evidenceSimKm2(t, 1, k), evidenceSimKm2(t, 2, k)
		if !(s1 < s2) {
			t.Errorf("evidence K1,2 vs K2,2 at k=%d: want sim %f < %f", k, s1, s2)
		}
	}
	const limitK = 60
	for _, mn := range [][2]int{{1, 2}, {1, 5}, {1, 8}, {2, 3}, {2, 5}, {2, 8}} {
		sm := evidenceSimKm2(t, mn[0], limitK)
		sn := evidenceSimKm2(t, mn[1], limitK)
		if !(sm < sn) {
			t.Errorf("evidence limit K%d,2 vs K%d,2: want sim %f < %f", mn[0], mn[1], sm, sn)
		}
	}
}

// TestTheorem71CounterexampleLargeM records a counterexample to the
// paper's Theorem 7.1 as stated: on K3,2 vs K8,2 with C1 = C2 = 0.8,
// evidence-based SimRank still scores the K3,2 pair HIGHER, because the
// geometric evidence term saturates (1-2^-3 = 0.875 vs 1-2^-8 ≈ 0.996)
// more slowly than plain SimRank decays in m. The theorem holds only for
// small m (the appendix proves m=1 vs n=2). If this test ever fails, the
// engines changed behaviour — not the math.
func TestTheorem71CounterexampleLargeM(t *testing.T) {
	cfg := DefaultConfig().WithVariant(Evidence)
	cfg.Iterations = 10
	g3 := clickgraph.CompleteBipartite(3, 2)
	g8 := clickgraph.CompleteBipartite(8, 2)
	r3 := mustRunDense(t, g3, cfg)
	r8 := mustRunDense(t, g8, cfg)
	a3, _ := g3.AdID("a0")
	b3, _ := g3.AdID("a1")
	a8, _ := g8.AdID("a0")
	b8, _ := g8.AdID("a1")
	s3, s8 := r3.AdSim(a3, b3), r8.AdSim(a8, b8)
	if !(s3 > s8) {
		t.Errorf("counterexample vanished: K3,2 evidence sim %f, K8,2 %f — engines changed", s3, s8)
	}
}

// The closed forms of Appendix A must agree with the iterative engine.
func TestClosedFormsMatchEngine(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 8} {
		g := clickgraph.CompleteBipartite(m, 2)
		for k := 1; k <= 8; k++ {
			cfg := DefaultConfig()
			cfg.Iterations = k
			r := mustRunDense(t, g, cfg)
			a, _ := g.AdID("a0")
			b, _ := g.AdID("a1")
			got := r.AdSim(a, b)
			want := ClosedFormKm2(cfg.C1, cfg.C2, m, k)
			if !almostEqual(got, want, tol) {
				t.Errorf("K%d,2 k=%d: engine %.12f, closed form %.12f", m, k, got, want)
			}
			gotEv := mustRunDense(t, g, cfg.WithVariant(Evidence)).AdSim(a, b)
			wantEv := ClosedFormEvidenceKm2(EvidenceGeometric, cfg.C1, cfg.C2, m, k)
			if !almostEqual(gotEv, wantEv, tol) {
				t.Errorf("evidence K%d,2 k=%d: engine %.12f, closed form %.12f", m, k, gotEv, wantEv)
			}
		}
	}
	// K2,2 also has the explicit series form of Theorem A.1.
	for k := 1; k <= 8; k++ {
		if got, want := ClosedFormKm2(0.8, 0.8, 2, k), ClosedFormK22(0.8, 0.8, k); !almostEqual(got, want, tol) {
			t.Errorf("Km2(m=2) vs A.1 series at k=%d: %.12f vs %.12f", k, got, want)
		}
	}
}

// The sparse engine with no pruning must agree exactly with the dense
// engine on every variant, on the paper fixtures.
func TestSparseMatchesDenseOnFixtures(t *testing.T) {
	graphs := map[string]*clickgraph.Graph{
		"fig3":    clickgraph.Fig3(),
		"fig4k22": clickgraph.Fig4K22(),
		"fig4k12": clickgraph.Fig4K12(),
		"fig5L":   clickgraph.Fig5Left(),
		"fig5R":   clickgraph.Fig5Right(),
		"k3_4":    clickgraph.CompleteBipartite(3, 4),
		"k5_2":    clickgraph.CompleteBipartite(5, 2),
	}
	for name, g := range graphs {
		for _, variant := range []Variant{Simple, Evidence, Weighted} {
			cfg := DefaultConfig().WithVariant(variant)
			cfg.Channel = ChannelClicks
			d := mustRunDense(t, g, cfg)
			s := mustRun(t, g, cfg)
			assertResultsEqual(t, name+"/"+variant.String(), g, d, s, 1e-10)
		}
	}
}

func assertResultsEqual(t *testing.T, label string, g *clickgraph.Graph, a, b *Result, eps float64) {
	t.Helper()
	for i := 0; i < g.NumQueries(); i++ {
		for j := i + 1; j < g.NumQueries(); j++ {
			if av, bv := a.QuerySim(i, j), b.QuerySim(i, j); !almostEqual(av, bv, eps) {
				t.Errorf("%s: query pair (%s,%s): dense %.12f sparse %.12f",
					label, g.Query(i), g.Query(j), av, bv)
			}
		}
	}
	for i := 0; i < g.NumAds(); i++ {
		for j := i + 1; j < g.NumAds(); j++ {
			if av, bv := a.AdSim(i, j), b.AdSim(i, j); !almostEqual(av, bv, eps) {
				t.Errorf("%s: ad pair (%s,%s): dense %.12f sparse %.12f",
					label, g.Ad(i), g.Ad(j), av, bv)
			}
		}
	}
}

// On the Figure 3 graph, SimRank must find the indirect pc–tv similarity
// that naive common-ad counting misses, and flower must stay dissimilar
// to everything (Table 2's qualitative content).
func TestFig3QualitativeStructure(t *testing.T) {
	g := clickgraph.Fig3()
	cfg := DefaultConfig()
	cfg.Iterations = 20
	r := mustRunDense(t, g, cfg)

	if s := querySimByName(t, r, "pc", "tv"); !(s > 0) {
		t.Errorf("sim(pc,tv) = %f, want > 0: SimRank should find the indirect link", s)
	}
	for _, q := range []string{"pc", "camera", "digital camera", "tv"} {
		if s := querySimByName(t, r, "flower", q); s != 0 {
			t.Errorf("sim(flower,%s) = %f, want 0: different component", q, s)
		}
	}
	// camera and digital camera are structurally symmetric in the fixture,
	// so they must have identical similarity to every other query.
	for _, q := range []string{"pc", "tv"} {
		a := querySimByName(t, r, "camera", q)
		b := querySimByName(t, r, "digital camera", q)
		if !almostEqual(a, b, tol) {
			t.Errorf("sim(camera,%s)=%f != sim(digital camera,%s)=%f", q, a, q, b)
		}
	}
	// The direct pair should beat the indirect pair.
	if direct, indirect := querySimByName(t, r, "camera", "digital camera"), querySimByName(t, r, "pc", "tv"); !(direct > indirect) {
		t.Errorf("sim(camera,digital camera)=%f should exceed sim(pc,tv)=%f", direct, indirect)
	}
}

// Evidence-based scores on Fig3 must rank camera–digital camera (2 common
// ads) above camera–tv (1 common ad) — the correction §6-§7 argue for.
func TestFig3EvidenceRanksByCommonAds(t *testing.T) {
	g := clickgraph.Fig3()
	cfg := DefaultConfig().WithVariant(Evidence)
	cfg.Iterations = 7
	r := mustRunDense(t, g, cfg)
	two := querySimByName(t, r, "camera", "digital camera")
	one := querySimByName(t, r, "camera", "tv")
	if !(two > one) {
		t.Errorf("evidence sim: camera-digital camera %f should exceed camera-tv %f", two, one)
	}
}

func TestScoresWithinUnitInterval(t *testing.T) {
	graphs := []*clickgraph.Graph{
		clickgraph.Fig3(), clickgraph.CompleteBipartite(4, 3), clickgraph.Fig5Right(),
	}
	for _, g := range graphs {
		for _, variant := range []Variant{Simple, Evidence, Weighted} {
			cfg := DefaultConfig().WithVariant(variant)
			cfg.Channel = ChannelClicks
			cfg.Iterations = 15
			r := mustRunDense(t, g, cfg)
			for i := 0; i < g.NumQueries(); i++ {
				for j := i; j < g.NumQueries(); j++ {
					s := r.QuerySim(i, j)
					if s < 0 || s > 1 {
						t.Errorf("%v: sim(%s,%s) = %f outside [0,1]", variant, g.Query(i), g.Query(j), s)
					}
				}
			}
		}
	}
}

func TestConvergenceWithTolerance(t *testing.T) {
	g := clickgraph.Fig3()
	cfg := DefaultConfig()
	cfg.Iterations = 500
	cfg.Tolerance = 1e-10
	r := mustRunDense(t, g, cfg)
	if !r.Converged {
		t.Fatalf("dense engine did not converge in %d iterations", cfg.Iterations)
	}
	if r.Iterations >= 500 {
		t.Errorf("expected early stop, ran all %d iterations", r.Iterations)
	}
	s := mustRun(t, g, cfg)
	if !s.Converged {
		t.Fatalf("sparse engine did not converge")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero C1", func(c *Config) { c.C1 = 0 }},
		{"C1 above 1", func(c *Config) { c.C1 = 1.5 }},
		{"zero C2", func(c *Config) { c.C2 = 0 }},
		{"negative C2", func(c *Config) { c.C2 = -0.1 }},
		{"zero iterations", func(c *Config) { c.Iterations = 0 }},
		{"negative tolerance", func(c *Config) { c.Tolerance = -1 }},
		{"negative prune", func(c *Config) { c.PruneEpsilon = -1 }},
		{"bad variant", func(c *Config) { c.Variant = Variant(99) }},
		{"bad evidence form", func(c *Config) { c.EvidenceForm = EvidenceForm(99) }},
		{"bad channel", func(c *Config) { c.Channel = WeightChannel(99) }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config %+v", tc.name, cfg)
		}
		if _, err := RunDense(clickgraph.Fig3(), cfg); err == nil {
			t.Errorf("%s: RunDense accepted invalid config", tc.name)
		}
		if _, err := Run(clickgraph.Fig3(), cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", tc.name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

// Pruning must only remove small scores: with a tiny epsilon the result
// should still be close to exact.
func TestPruningApproximation(t *testing.T) {
	g := clickgraph.Fig3()
	cfg := DefaultConfig()
	exact := mustRun(t, g, cfg)
	cfg.PruneEpsilon = 1e-4
	approx := mustRun(t, g, cfg)
	for i := 0; i < g.NumQueries(); i++ {
		for j := i + 1; j < g.NumQueries(); j++ {
			e, a := exact.QuerySim(i, j), approx.QuerySim(i, j)
			if math.Abs(e-a) > 0.01 {
				t.Errorf("pruned score too far off for (%s,%s): exact %f approx %f",
					g.Query(i), g.Query(j), e, a)
			}
		}
	}
}
