package core

import (
	"strings"
	"testing"

	"simrankpp/internal/partition"
)

// Micro-benchmarks for the iteration hot path: one accumulation pass per
// op, map baseline vs frontier-scatter vs the default row-major pass
// (serial and parallel). Run with
//
//	go test -run='^$' -bench='Pass' -benchmem ./internal/core
//
// cmd/corebench runs the same bodies and records BENCH_core.json.

func benchPassConfig(b *testing.B) PassBenchConfig {
	bc := DefaultPassBenchConfig()
	if testing.Short() {
		bc.Queries, bc.Ads, bc.Edges = 120, 90, 900
	}
	b.Logf("graph: %d queries, %d ads, %d edges, %d workers", bc.Queries, bc.Ads, bc.Edges, bc.Workers)
	return bc
}

func runPassBenchCases(b *testing.B, prefix string) {
	bc := benchPassConfig(b)
	for _, c := range PassBenchCases(bc) {
		group, variant, _ := strings.Cut(c.Name, "/")
		if group != prefix {
			continue
		}
		b.Run(variant, func(b *testing.B) {
			b.ReportAllocs()
			c.Body(b.N)
		})
	}
}

func BenchmarkSimplePass(b *testing.B)   { runPassBenchCases(b, "SimplePass") }
func BenchmarkWeightedPass(b *testing.B) { runPassBenchCases(b, "WeightedPass") }

// BenchmarkEvidenceBuild measures constructing the query-side evidence
// table: the old per-pair Add accumulation vs the sorted per-row scatter
// (which additionally precomputes the multipliers and expands the
// symmetric CSR the fused harvest reads).
func BenchmarkEvidenceBuild(b *testing.B) {
	bc := benchPassConfig(b)
	for _, c := range EvidenceBuildBenchCases(bc) {
		_, variant, _ := strings.Cut(c.Name, "/")
		b.Run(variant, func(b *testing.B) {
			b.ReportAllocs()
			c.Body(b.N)
		})
	}
}

// BenchmarkWeightedIterations measures whole multi-iteration weighted runs
// under the delta-skip modes (one 20-iteration run per op). Beyond ns/op,
// each sub-benchmark reports the mean cost of the first iteration, the
// most expensive iteration, and the last three iterations — the shape that
// shows change-tracked skipping making later iterations cheaper as rows
// freeze. See PERF.md for how to read the three modes.
func BenchmarkWeightedIterations(b *testing.B) {
	bc := benchPassConfig(b)
	const iters = 20
	for _, m := range IterTrajectoryModes {
		b.Run(m.Name, func(b *testing.B) {
			var iter1, peak, late float64
			for i := 0; i < b.N; i++ {
				stats := IterationTrajectory(bc, iters, m.SkipTol, m.Channel)
				pk, lt := 0.0, 0.0
				for _, s := range stats {
					if d := float64(s.Duration.Nanoseconds()); d > pk {
						pk = d
					}
				}
				tail := stats[len(stats)-3:]
				for _, s := range tail {
					lt += float64(s.Duration.Nanoseconds())
				}
				iter1 += float64(stats[0].Duration.Nanoseconds())
				peak += pk
				late += lt / float64(len(tail))
			}
			n := float64(b.N)
			b.ReportMetric(iter1/n, "iter1-ns")
			b.ReportMetric(peak/n, "peak-ns")
			b.ReportMetric(late/n, "late-ns")
		})
	}
}

// BenchmarkShardedRun compares one full weighted run of the multi-cluster
// workload (many medium components + one ACL-carved giant) monolithic vs
// sharded: same config, tolerance-based early stop, pruning, delta skip.
// The sharded engine stops finished shards entirely and runs shards
// concurrently on a bounded pool; its accumulators are sized per shard.
func BenchmarkShardedRun(b *testing.B) {
	bc := DefaultShardBenchConfig()
	if testing.Short() {
		bc = SmokeShardBenchConfig()
	}
	g := MultiClusterGraph(bc)
	cfg := shardBenchRunConfig(bc)
	pcfg := partition.DefaultPlanConfig()
	pcfg.MaxShardNodes = bc.MaxShardNodes
	pcfg.MinCutNodes = bc.MaxShardNodes / 4
	plan, err := partition.BuildPlan(g, pcfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("graph: %d queries, %d ads, %d edges; plan: %d shards, exact=%v, %d cut edges",
		g.NumQueries(), g.NumAds(), g.NumEdges(), len(plan.Shards), plan.Exact, plan.TotalCutEdges)
	b.Run("monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(g, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunSharded(g, cfg, plan, ShardOptions{Workers: bc.Workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
