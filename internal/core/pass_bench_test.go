package core

import (
	"strings"
	"testing"
)

// Micro-benchmarks for the iteration hot path: one accumulation pass per
// op, map baseline vs frontier-scatter vs the default row-major pass
// (serial and parallel). Run with
//
//	go test -run='^$' -bench='Pass' -benchmem ./internal/core
//
// cmd/corebench runs the same bodies and records BENCH_core.json.

func benchPassConfig(b *testing.B) PassBenchConfig {
	bc := DefaultPassBenchConfig()
	if testing.Short() {
		bc.Queries, bc.Ads, bc.Edges = 120, 90, 900
	}
	b.Logf("graph: %d queries, %d ads, %d edges, %d workers", bc.Queries, bc.Ads, bc.Edges, bc.Workers)
	return bc
}

func runPassBenchCases(b *testing.B, prefix string) {
	bc := benchPassConfig(b)
	for _, c := range PassBenchCases(bc) {
		group, variant, _ := strings.Cut(c.Name, "/")
		if group != prefix {
			continue
		}
		b.Run(variant, func(b *testing.B) {
			b.ReportAllocs()
			c.Body(b.N)
		})
	}
}

func BenchmarkSimplePass(b *testing.B)   { runPassBenchCases(b, "SimplePass") }
func BenchmarkWeightedPass(b *testing.B) { runPassBenchCases(b, "WeightedPass") }
