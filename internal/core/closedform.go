package core

import "math"

// This file implements the closed forms the paper proves in Appendices A
// and B for complete bipartite graphs. They anchor the property tests of
// Theorems 6.1, 6.2 and 7.1: the iterative engines must agree with these
// formulas to floating-point accuracy.

// ClosedFormK22 returns the plain-SimRank similarity of the two nodes of
// the 2-node side of K2,2 after k iterations, per Theorem A.1(i):
//
//	sim^(k)(A, B) = (C2/2) · Σ_{i=1..k} 2^{-(i-1)} · C1^⌊i/2⌋ · C2^⌊(i-1)/2⌋
//
// where C2 is the decay factor of the side holding A and B, and C1 the
// other side's. Note: the paper's statement writes the last exponent as
// ⌈(i-1)/2⌉, but its own term-by-term expansion (and Table 3's numbers,
// e.g. 0.56 at k=2) require ⌊(i-1)/2⌋ — the ceiling is a typo.
func ClosedFormK22(c1, c2 float64, k int) float64 {
	sum := 0.0
	for i := 1; i <= k; i++ {
		term := math.Pow(0.5, float64(i-1)) *
			math.Pow(c1, math.Floor(float64(i)/2)) *
			math.Pow(c2, math.Floor(float64(i-1)/2))
		sum += term
	}
	return c2 / 2 * sum
}

// ClosedFormK12 returns the plain-SimRank similarity of the two nodes of
// the 2-node side of K1,2 after k >= 1 iterations. With a single common
// neighbor a of degree... the pair's nodes each have one neighbor, so
// sim^(k) = C2 · s(a, a) = C2 for every k > 0 (Theorem A.2).
func ClosedFormK12(c2 float64, k int) float64 {
	if k < 1 {
		return 0
	}
	return c2
}

// ClosedFormKm2 returns the plain-SimRank similarity of the two nodes of
// the 2-node side of K_{m,2} after k iterations, computed by the exact
// two-state recurrence (the Appendix A expansion generalized to m). The
// pair of interest {A, B} sits on the 2-node side; its m opposite
// neighbors are all of V1, and by symmetry every distinct V1 pair shares
// one similarity value u, so:
//
//	sim^{(t+1)}(A, B) = (C2/m²) · (m + m(m-1)·u^{(t)})
//	u^{(t+1)}         = (C1/4) · (2 + 2·sim^{(t)}(A, B))
//
// since each V1 node has exactly the 2 neighbors {A, B}.
func ClosedFormKm2(c1, c2 float64, m, k int) float64 {
	if m < 1 || k < 1 {
		return 0
	}
	simAB, u := 0.0, 0.0
	for t := 0; t < k; t++ {
		newAB := c2 / float64(m*m) * (float64(m) + float64(m*(m-1))*u)
		newU := c1 / 4 * (2 + 2*simAB)
		simAB, u = newAB, newU
	}
	return simAB
}

// ClosedFormEvidenceKm2 returns the evidence-based SimRank similarity of
// the two nodes of the 2-node side of K_{m,2} after k iterations
// (Theorem B.1 generalized): the plain score times the evidence of m
// common neighbors.
func ClosedFormEvidenceKm2(form EvidenceForm, c1, c2 float64, m, k int) float64 {
	return EvidenceScore(form, m) * ClosedFormKm2(c1, c2, m, k)
}

// ClosedFormK22Limit returns lim_{k→∞} sim^(k)(A, B) on K2,2 by summing
// the Theorem A.1 series to convergence.
func ClosedFormK22Limit(c1, c2 float64) float64 {
	sum, i := 0.0, 1
	for {
		term := math.Pow(0.5, float64(i-1)) *
			math.Pow(c1, math.Floor(float64(i)/2)) *
			math.Pow(c2, math.Floor(float64(i-1)/2))
		sum += term
		if term < 1e-16 || i > 10000 {
			break
		}
		i++
	}
	return c2 / 2 * sum
}
