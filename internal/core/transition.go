package core

import (
	"math"

	"simrankpp/internal/clickgraph"
)

// transitionModel precomputes the weighted-SimRank walk factors of §8.2:
//
//	W(q, i) = spread(i) · w(q, i) / Σ_{j∈E(q)} w(q, j)   (i is an ad)
//	W(α, i) = spread(i) · w(α, i) / Σ_{j∈E(α)} w(α, j)   (i is a query)
//	spread(v) = e^{-variance(v)}
//
// where variance(v) is the population variance of the weights on v's
// incident edges. The factors satisfy the consistency rules of Definition
// 8.1: higher weight toward a low-variance neighbor yields a larger factor.
type transitionModel struct {
	g       *clickgraph.Graph
	channel WeightChannel
	// spreadQ[q] = e^{-variance over q's incident edge weights};
	// spreadA[a] analogous.
	spreadQ, spreadA []float64
	// rowSumQ[q] = Σ_{a∈E(q)} w(q,a); rowSumA[a] = Σ_{q∈E(a)} w(q,a).
	rowSumQ, rowSumA []float64
}

// weightRow returns the neighbor ids and channel weights of a node.
func weightRow(g *clickgraph.Graph, ch WeightChannel, side clickgraph.Side, id int) ([]int, []float64) {
	switch ch {
	case ChannelClicks:
		if side == clickgraph.QuerySide {
			return g.ClicksOfQuery(id)
		}
		return g.ClicksOfAd(id)
	case ChannelImpressions:
		nbrs, _ := neighborIDs(g, side, id)
		w := make([]float64, len(nbrs))
		for i, n := range nbrs {
			var ew clickgraph.EdgeWeights
			var ok bool
			if side == clickgraph.QuerySide {
				ew, ok = g.EdgeWeightsOf(id, n)
			} else {
				ew, ok = g.EdgeWeightsOf(n, id)
			}
			if ok {
				w[i] = float64(ew.Impressions)
			}
		}
		return nbrs, w
	default:
		if side == clickgraph.QuerySide {
			return g.AdsOf(id)
		}
		return g.QueriesOf(id)
	}
}

func neighborIDs(g *clickgraph.Graph, side clickgraph.Side, id int) ([]int, []float64) {
	if side == clickgraph.QuerySide {
		return g.AdsOf(id)
	}
	return g.QueriesOf(id)
}

// popVariance returns the population variance of xs (0 for fewer than two
// values, matching "a single observation has no spread").
func popVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	v := 0.0
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return v / float64(n)
}

// newTransitionModel scans the graph once and caches spreads and row sums.
// disableSpread forces spread ≡ 1 (the ablation of DESIGN.md).
func newTransitionModel(g *clickgraph.Graph, ch WeightChannel, disableSpread bool) *transitionModel {
	m := &transitionModel{
		g:       g,
		channel: ch,
		spreadQ: make([]float64, g.NumQueries()),
		spreadA: make([]float64, g.NumAds()),
		rowSumQ: make([]float64, g.NumQueries()),
		rowSumA: make([]float64, g.NumAds()),
	}
	for q := 0; q < g.NumQueries(); q++ {
		_, w := weightRow(g, ch, clickgraph.QuerySide, q)
		m.rowSumQ[q] = sum(w)
		if disableSpread {
			m.spreadQ[q] = 1
		} else {
			m.spreadQ[q] = math.Exp(-popVariance(w))
		}
	}
	for a := 0; a < g.NumAds(); a++ {
		_, w := weightRow(g, ch, clickgraph.AdSide, a)
		m.rowSumA[a] = sum(w)
		if disableSpread {
			m.spreadA[a] = 1
		} else {
			m.spreadA[a] = math.Exp(-popVariance(w))
		}
	}
	return m
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// queryRow returns, for query q, its ad neighbors and the walk factors
// W(q, a) for each.
func (m *transitionModel) queryRow(q int) (ads []int, w []float64) {
	ads, raw := weightRow(m.g, m.channel, clickgraph.QuerySide, q)
	w = make([]float64, len(raw))
	rs := m.rowSumQ[q]
	if rs == 0 {
		return ads, w
	}
	for i, a := range ads {
		w[i] = m.spreadA[a] * raw[i] / rs
	}
	return ads, w
}

// adRow returns, for ad a, its query neighbors and the walk factors
// W(a, q) for each.
func (m *transitionModel) adRow(a int) (queries []int, w []float64) {
	queries, raw := weightRow(m.g, m.channel, clickgraph.AdSide, a)
	w = make([]float64, len(raw))
	rs := m.rowSumA[a]
	if rs == 0 {
		return queries, w
	}
	for i, q := range queries {
		w[i] = m.spreadQ[q] * raw[i] / rs
	}
	return queries, w
}
