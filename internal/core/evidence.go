package core

import (
	"math"

	"simrankpp/internal/clickgraph"
)

// EvidenceScore returns the evidence of similarity for a pair of nodes
// with n common neighbors, under the given form. Evidence is an increasing
// function of n approaching 1, and 0 when the nodes share no neighbor.
// For the multiplier actually applied by the engines, see
// EvidenceMultiplier.
func EvidenceScore(form EvidenceForm, n int) float64 {
	if n <= 0 {
		return 0
	}
	switch form {
	case EvidenceExponential:
		return 1 - math.Exp(-float64(n))
	default:
		// Geometric: Σ_{i=1..n} 2^{-i} = 1 - 2^{-n}. For n >= 63 the
		// shift would overflow; the value is 1 to double precision long
		// before that.
		if n >= 53 {
			return 1
		}
		return 1 - 1/float64(uint64(1)<<uint(n))
	}
}

// EvidenceMultiplier returns the factor the engines multiply a pair score
// by: EvidenceScore for pairs with common neighbors. For a pair with no
// common neighbors it returns 1 (pass-through) unless strict is set, in
// which case it returns the literal Equation 7.3 value of 0. See
// Config.StrictEvidence for why pass-through is the default.
func EvidenceMultiplier(form EvidenceForm, n int, strict bool) float64 {
	if n <= 0 {
		if strict {
			return 0
		}
		return 1
	}
	return EvidenceScore(form, n)
}

// QueryEvidence returns evidence(q1, q2) on graph g: the evidence derived
// from |E(q1) ∩ E(q2)| common ads.
func QueryEvidence(g *clickgraph.Graph, form EvidenceForm, q1, q2 int) float64 {
	return EvidenceScore(form, len(g.CommonAds(q1, q2)))
}

// AdEvidence returns evidence(a1, a2) on graph g: the evidence derived from
// |E(a1) ∩ E(a2)| common queries.
func AdEvidence(g *clickgraph.Graph, form EvidenceForm, a1, a2 int) float64 {
	return EvidenceScore(form, len(g.CommonQueries(a1, a2)))
}

// CommonAdCounts computes the naive similarity of §3 (Table 1): the number
// of common ads for every query pair, as a symmetric matrix indexed by
// query id. It is the strawman the paper improves upon and doubles as the
// evidence-count substrate.
func CommonAdCounts(g *clickgraph.Graph) [][]int {
	nq := g.NumQueries()
	counts := make([][]int, nq)
	for i := range counts {
		counts[i] = make([]int, nq)
	}
	// Scatter through ads: every ad contributes 1 to each pair of its
	// query neighbors. O(Σ_a deg(a)^2), far cheaper than pairwise
	// intersection for sparse graphs.
	for a := 0; a < g.NumAds(); a++ {
		qs, _ := g.QueriesOf(a)
		for x := 0; x < len(qs); x++ {
			for y := x + 1; y < len(qs); y++ {
				counts[qs[x]][qs[y]]++
				counts[qs[y]][qs[x]]++
			}
		}
	}
	return counts
}
