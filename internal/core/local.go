package core

import (
	"fmt"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// LocalConfig bounds the neighborhood the single-query engine extracts
// around its source before running SimRank on the induced subgraph.
type LocalConfig struct {
	// Radius is the BFS depth in edges from the source query. A radius of
	// 2k reaches queries k "common-ad hops" away; the default of 4 covers
	// the two-hop relationships (e.g. pc–tv in Figure 3) the paper argues
	// SimRank should surface.
	Radius int
	// MaxQueries and MaxAds cap the neighborhood size; BFS stops adding
	// nodes of a side once its cap is reached. Zero means unbounded.
	MaxQueries, MaxAds int
}

// DefaultLocalConfig returns radius 4 with a 2000-query, 2000-ad cap —
// small enough for interactive latency, wide enough for two-hop rewrites.
func DefaultLocalConfig() LocalConfig {
	return LocalConfig{Radius: 4, MaxQueries: 2000, MaxAds: 2000}
}

// LocalSimilarities scores a single query against the queries in its
// bounded BFS neighborhood: the online front-end path of Figure 2, where
// one incoming query needs rewrites now and an all-pairs computation over
// the full graph is not affordable.
//
// Scores are exact SimRank on the induced neighborhood subgraph, which is
// an approximation to SimRank on the full graph: mass entering through cut
// edges is lost, an error that shrinks as C^radius. Degrees, evidence
// counts and weight variances are those of the subgraph.
//
// The returned pairs use parent-graph query ids and are sorted descending
// by score.
func LocalSimilarities(g *clickgraph.Graph, q int, cfg Config, lc LocalConfig) ([]sparse.Scored, error) {
	if q < 0 || q >= g.NumQueries() {
		return nil, fmt.Errorf("core: query id %d outside [0,%d)", q, g.NumQueries())
	}
	if lc.Radius < 2 {
		return nil, fmt.Errorf("core: local radius must be >= 2 to reach another query, got %d", lc.Radius)
	}
	queryIDs, adIDs := neighborhood(g, q, lc)
	sub := g.InducedSubgraph(queryIDs, adIDs)
	res, err := Run(sub, cfg)
	if err != nil {
		return nil, err
	}
	name := g.Query(q)
	subQ, ok := sub.QueryID(name)
	if !ok {
		return nil, fmt.Errorf("core: source query %q lost during neighborhood extraction", name)
	}
	local := res.TopRewrites(subQ, -1)
	out := make([]sparse.Scored, 0, len(local))
	for _, s := range local {
		pid, ok := g.QueryID(sub.Query(s.Node))
		if !ok {
			// Cannot happen: the subgraph's names come from g.
			return nil, fmt.Errorf("core: subgraph query %q not in parent graph", sub.Query(s.Node))
		}
		out = append(out, sparse.Scored{Node: pid, Score: s.Score})
	}
	return out, nil
}

// neighborhood collects query and ad ids within lc.Radius BFS edges of
// source query q, respecting the side caps. The source is always included.
func neighborhood(g *clickgraph.Graph, q int, lc LocalConfig) (queryIDs, adIDs []int) {
	type node struct {
		id    int
		side  clickgraph.Side
		depth int
	}
	seenQ := map[int]bool{q: true}
	seenA := map[int]bool{}
	queryIDs = []int{q}
	queue := []node{{id: q, side: clickgraph.QuerySide}}
	qFull := func() bool { return lc.MaxQueries > 0 && len(queryIDs) >= lc.MaxQueries }
	aFull := func() bool { return lc.MaxAds > 0 && len(adIDs) >= lc.MaxAds }
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth == lc.Radius {
			continue
		}
		if cur.side == clickgraph.QuerySide {
			ads, _ := g.AdsOf(cur.id)
			for _, a := range ads {
				if seenA[a] || aFull() {
					continue
				}
				seenA[a] = true
				adIDs = append(adIDs, a)
				queue = append(queue, node{id: a, side: clickgraph.AdSide, depth: cur.depth + 1})
			}
		} else {
			qs, _ := g.QueriesOf(cur.id)
			for _, p := range qs {
				if seenQ[p] || qFull() {
					continue
				}
				seenQ[p] = true
				queryIDs = append(queryIDs, p)
				queue = append(queue, node{id: p, side: clickgraph.QuerySide, depth: cur.depth + 1})
			}
		}
	}
	return queryIDs, adIDs
}
