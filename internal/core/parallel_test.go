package core

import (
	"bytes"
	"strings"
	"testing"

	"simrankpp/internal/clickgraph"
)

func TestParallelMatchesSerial(t *testing.T) {
	graphs := []*clickgraph.Graph{
		clickgraph.Fig3(),
		clickgraph.CompleteBipartite(5, 4),
		randomGraph(99, 12, 10, 40),
	}
	for _, g := range graphs {
		for _, variant := range []Variant{Simple, Evidence, Weighted} {
			for _, workers := range []int{1, 2, 4, 7} {
				cfg := DefaultConfig().WithVariant(variant)
				cfg.Channel = ChannelClicks
				serial := mustRun(t, g, cfg)
				par, err := RunParallel(g, cfg, workers)
				if err != nil {
					t.Fatalf("RunParallel(%v, %d workers): %v", variant, workers, err)
				}
				for i := 0; i < g.NumQueries(); i++ {
					for j := i + 1; j < g.NumQueries(); j++ {
						s, p := serial.QuerySim(i, j), par.QuerySim(i, j)
						if !almostEqual(s, p, 1e-9) {
							t.Fatalf("%v workers=%d: sim(%d,%d) serial %.12f parallel %.12f",
								variant, workers, i, j, s, p)
						}
					}
				}
				for i := 0; i < g.NumAds(); i++ {
					for j := i + 1; j < g.NumAds(); j++ {
						s, p := serial.AdSim(i, j), par.AdSim(i, j)
						if !almostEqual(s, p, 1e-9) {
							t.Fatalf("%v workers=%d: ad sim(%d,%d) serial %.12f parallel %.12f",
								variant, workers, i, j, s, p)
						}
					}
				}
			}
		}
	}
}

func TestParallelValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.C1 = 0
	if _, err := RunParallel(clickgraph.Fig3(), cfg, 4); err == nil {
		t.Error("RunParallel accepted invalid config")
	}
}

func TestParallelConvergence(t *testing.T) {
	g := clickgraph.Fig3()
	cfg := DefaultConfig()
	cfg.Iterations = 500
	cfg.Tolerance = 1e-10
	r, err := RunParallel(g, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Error("parallel engine did not converge")
	}
}

func TestResultRoundTrip(t *testing.T) {
	g := clickgraph.Fig3()
	for _, variant := range []Variant{Simple, Evidence, Weighted} {
		cfg := DefaultConfig().WithVariant(variant)
		cfg.C1, cfg.C2 = 0.7, 0.9
		res := mustRun(t, g, cfg)

		var buf bytes.Buffer
		if err := WriteResult(&buf, res); err != nil {
			t.Fatalf("WriteResult: %v", err)
		}
		got, err := ReadResult(&buf, g)
		if err != nil {
			t.Fatalf("ReadResult: %v", err)
		}
		if got.Config.Variant != variant || got.Iterations != res.Iterations ||
			got.Config.C1 != 0.7 || got.Config.C2 != 0.9 {
			t.Errorf("meta round trip: %+v vs %+v", got.Config, res.Config)
		}
		for i := 0; i < g.NumQueries(); i++ {
			for j := i + 1; j < g.NumQueries(); j++ {
				if a, b := res.QuerySim(i, j), got.QuerySim(i, j); a != b {
					t.Errorf("query sim(%d,%d): %v vs %v", i, j, a, b)
				}
			}
		}
		for i := 0; i < g.NumAds(); i++ {
			for j := i + 1; j < g.NumAds(); j++ {
				if a, b := res.AdSim(i, j), got.AdSim(i, j); a != b {
					t.Errorf("ad sim(%d,%d): %v vs %v", i, j, a, b)
				}
			}
		}
	}
}

func TestReadResultRejectsMalformed(t *testing.T) {
	g := clickgraph.Fig3()
	cases := []string{
		"",                                     // empty
		"not a header\n",                       // bad header
		"#simrankpp-scores v1\nX\ta\tb\t0.5\n", // bad kind
		"#simrankpp-scores v1\nQ\tpc\tcamera\tnope\n",       // bad score
		"#simrankpp-scores v1\nQ\tpc\tmissing query\t0.5\n", // unknown node
		"#simrankpp-scores v1\nQ\tpc\n",                     // short line
		"#simrankpp-scores v1\n!meta\tbadfield\n",           // bad meta
		"#simrankpp-scores v1\n!meta\titerations=x\n",       // bad meta value
	}
	for _, c := range cases {
		if _, err := ReadResult(strings.NewReader(c), g); err == nil {
			t.Errorf("ReadResult accepted %q", c)
		}
	}
}
