package core

import (
	"context"
	"errors"
	"testing"

	"simrankpp/internal/partition"
)

// TestShardedContextCancel pins the cooperative-cancellation contract
// ShardOptions.Context adds for the ingest fold path: a cancelled
// context stops the run at a shard boundary with the context's error,
// and a live context changes nothing.
func TestShardedContextCancel(t *testing.T) {
	g := multiComponentGraph(11, 5, 14, 10, 45)
	plan := partition.ComponentPlan(g)
	cfg := DefaultConfig()
	cfg.Iterations = 3

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSharded(g, cfg, plan, ShardOptions{Workers: 2, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}

	if _, err := RunSharded(g, cfg, plan, ShardOptions{Workers: 2, Context: context.Background()}); err != nil {
		t.Fatalf("live context failed the run: %v", err)
	}
}
