package core

import (
	"testing"
	"testing/quick"

	"simrankpp/internal/clickgraph"
)

// weightedSimPair runs weighted SimRank with the clicks channel and
// returns the similarity of the named query pair.
func weightedSimPair(t *testing.T, g *clickgraph.Graph, q1, q2 string) float64 {
	t.Helper()
	cfg := DefaultConfig().WithVariant(Weighted)
	cfg.Channel = ChannelClicks
	cfg.Iterations = 10
	r := mustRunDense(t, g, cfg)
	return querySimByName(t, r, q1, q2)
}

// Figure 5: equal click counts to a shared ad (low variance) must beat a
// lopsided split (high variance) — consistency rule (ii) of Definition
// 8.1.
func TestFig5VarianceConsistency(t *testing.T) {
	left := weightedSimPair(t, clickgraph.Fig5Left(), "flower", "orchids")
	right := weightedSimPair(t, clickgraph.Fig5Right(), "flower", "teleflora")
	if !(left > right) {
		t.Errorf("Fig5: equal-split sim %g should exceed lopsided sim %g", left, right)
	}
	// Plain and evidence-based SimRank cannot distinguish the two graphs
	// (both are K2,1 structurally) — the failure §8.1 calls out.
	for _, variant := range []Variant{Simple, Evidence} {
		cfg := DefaultConfig().WithVariant(variant)
		cfg.Channel = ChannelClicks
		l := mustRunDense(t, clickgraph.Fig5Left(), cfg)
		r := mustRunDense(t, clickgraph.Fig5Right(), cfg)
		lv := querySimByName(t, l, "flower", "orchids")
		rv := querySimByName(t, r, "flower", "teleflora")
		if lv != rv {
			t.Errorf("%v should not distinguish Fig5 graphs: %g vs %g", variant, lv, rv)
		}
	}
}

// Figure 6: with equal spread, more clicks should mean more similarity —
// consistency rule (i). The click counts enter through the expected click
// rate channel in the paper's deployment; with raw counts, the normalized
// weights of the two graphs are identical (5/5 vs 100/100 both normalize
// to 1), so rule (i) is exercised via the rate channel where the shared
// ad's rate estimate differs.
func TestFig6WeightMagnitude(t *testing.T) {
	// Build two graphs that differ only in the magnitude of the expected
	// click rate toward the shared ad.
	build := func(rate float64) *clickgraph.Graph {
		b := clickgraph.NewBuilder()
		for _, q := range []string{"flower", "orchids"} {
			if err := b.AddEdge(q, "teleflora.com", clickgraph.EdgeWeights{
				Impressions: 100, Clicks: int64(rate * 100), ExpectedClickRate: rate,
			}); err != nil {
				t.Fatal(err)
			}
			// A private low-rate ad per query so normalization has a
			// denominator to spread over.
			if err := b.AddEdge(q, "other-"+q+".com", clickgraph.EdgeWeights{
				Impressions: 100, Clicks: 10, ExpectedClickRate: 0.1,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return b.Build()
	}
	cfg := DefaultConfig().WithVariant(Weighted)
	cfg.Iterations = 10
	hi := mustRunDense(t, build(0.9), cfg)
	lo := mustRunDense(t, build(0.2), cfg)
	hiV := querySimByName(t, hi, "flower", "orchids")
	loV := querySimByName(t, lo, "flower", "orchids")
	if !(hiV > loV) {
		t.Errorf("Fig6: high-weight sim %g should exceed low-weight sim %g", hiV, loV)
	}
}

// Theorem 8.1 (consistency), property form: for a K2,1 graph with click
// weights (w1, w2) toward the shared ad, the weighted similarity is
// monotone decreasing in the weight variance. Random weight pairs with
// smaller variance must never score lower.
func TestTheorem81VarianceMonotonicity(t *testing.T) {
	simFor := func(w1, w2 int64) float64 {
		b := clickgraph.NewBuilder()
		for _, e := range []struct {
			q string
			c int64
		}{{"q1", w1}, {"q2", w2}} {
			if err := b.AddEdge(e.q, "shared", clickgraph.EdgeWeights{
				Impressions: e.c * 2, Clicks: e.c, ExpectedClickRate: 0.5,
			}); err != nil {
				t.Fatal(err)
			}
		}
		g := b.Build()
		cfg := DefaultConfig().WithVariant(Weighted)
		cfg.Channel = ChannelClicks
		cfg.Iterations = 8
		r := mustRunDense(t, g, cfg)
		return querySimByName(t, r, "q1", "q2")
	}
	check := func(a, b uint8) bool {
		// Two spreads of the same total mass: (x, y) vs perfectly even.
		total := int64(a%50) + int64(b%50) + 2
		x := int64(a%50) + 1
		y := total - x
		uneven := simFor(x, y)
		even := simFor(total/2, total-total/2)
		return even >= uneven-1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Symmetry and boundedness of weighted SimRank under random small graphs.
func TestWeightedRandomGraphInvariants(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 6, 5, 12)
		cfg := DefaultConfig().WithVariant(Weighted)
		cfg.Channel = ChannelClicks
		r, err := RunDense(g, cfg)
		if err != nil {
			return false
		}
		for i := 0; i < g.NumQueries(); i++ {
			for j := i + 1; j < g.NumQueries(); j++ {
				s := r.QuerySim(i, j)
				if s != r.QuerySim(j, i) || s < 0 || s > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomGraph builds a deterministic pseudo-random bipartite graph for
// property tests.
func randomGraph(seed uint64, nq, na, edges int) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	s := seed
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	for i := 0; i < nq; i++ {
		b.AddQuery(queryName(i))
	}
	for e := 0; e < edges; e++ {
		q := next(nq)
		a := next(na)
		clicks := int64(next(20) + 1)
		// Builder merges duplicates, which is fine for the property.
		err := b.AddEdge(queryName(q), adName(a), clickgraph.EdgeWeights{
			Impressions: clicks * 3, Clicks: clicks,
			ExpectedClickRate: float64(next(100)) / 100,
		})
		if err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func queryName(i int) string { return "q" + string(rune('a'+i)) }
func adName(i int) string    { return "ad" + string(rune('a'+i)) }

// Differential property: sparse engine equals dense engine on random
// graphs for every variant.
func TestSparseMatchesDenseRandom(t *testing.T) {
	check := func(seed uint64, variantPick uint8) bool {
		g := randomGraph(seed, 7, 6, 15)
		cfg := DefaultConfig().WithVariant(Variant(variantPick % 3))
		cfg.Channel = ChannelClicks
		cfg.Iterations = 6
		d, err := RunDense(g, cfg)
		if err != nil {
			return false
		}
		s, err := Run(g, cfg)
		if err != nil {
			return false
		}
		for i := 0; i < g.NumQueries(); i++ {
			for j := i + 1; j < g.NumQueries(); j++ {
				if diff := d.QuerySim(i, j) - s.QuerySim(i, j); diff > 1e-9 || diff < -1e-9 {
					return false
				}
			}
		}
		for i := 0; i < g.NumAds(); i++ {
			for j := i + 1; j < g.NumAds(); j++ {
				if diff := d.AdSim(i, j) - s.AdSim(i, j); diff > 1e-9 || diff < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// StrictEvidence zeroes pairs without common neighbors; pass-through
// keeps them at the plain SimRank value.
func TestStrictEvidenceSemantics(t *testing.T) {
	g := clickgraph.Fig3()
	pc, _ := g.QueryID("pc")
	tv, _ := g.QueryID("tv")

	plain := mustRunDense(t, g, DefaultConfig())
	loose := mustRunDense(t, g, DefaultConfig().WithVariant(Evidence))
	strictCfg := DefaultConfig().WithVariant(Evidence)
	strictCfg.StrictEvidence = true
	strict := mustRunDense(t, g, strictCfg)

	if got := strict.QuerySim(pc, tv); got != 0 {
		t.Errorf("strict evidence sim(pc,tv) = %g want 0 (no common ads)", got)
	}
	if got, want := loose.QuerySim(pc, tv), plain.QuerySim(pc, tv); got != want {
		t.Errorf("pass-through evidence sim(pc,tv) = %g want plain value %g", got, want)
	}
	// Pairs WITH common ads are scaled identically under both semantics.
	cam, _ := g.QueryID("camera")
	dig, _ := g.QueryID("digital camera")
	if strict.QuerySim(cam, dig) != loose.QuerySim(cam, dig) {
		t.Errorf("evidence semantics should agree on pairs with common ads")
	}
}

// The local engine must reproduce full-graph scores when the neighborhood
// covers the whole component.
func TestLocalMatchesFullOnSmallGraph(t *testing.T) {
	g := clickgraph.Fig3()
	cfg := DefaultConfig()
	full := mustRun(t, g, cfg)
	pc, _ := g.QueryID("pc")
	lc := LocalConfig{Radius: 10, MaxQueries: 100, MaxAds: 100}
	local, err := LocalSimilarities(g, pc, cfg, lc)
	if err != nil {
		t.Fatal(err)
	}
	if len(local) == 0 {
		t.Fatal("local engine returned nothing")
	}
	for _, s := range local {
		if want := full.QuerySim(pc, s.Node); !almostEqual(s.Score, want, 1e-10) {
			t.Errorf("local sim(pc,%s) = %g want %g", g.Query(s.Node), s.Score, want)
		}
	}
}

func TestLocalValidation(t *testing.T) {
	g := clickgraph.Fig3()
	if _, err := LocalSimilarities(g, -1, DefaultConfig(), DefaultLocalConfig()); err == nil {
		t.Error("accepted negative query id")
	}
	if _, err := LocalSimilarities(g, g.NumQueries(), DefaultConfig(), DefaultLocalConfig()); err == nil {
		t.Error("accepted out-of-range query id")
	}
	if _, err := LocalSimilarities(g, 0, DefaultConfig(), LocalConfig{Radius: 1}); err == nil {
		t.Error("accepted radius < 2")
	}
}

func TestEvidenceScoreForms(t *testing.T) {
	if EvidenceScore(EvidenceGeometric, 0) != 0 {
		t.Error("geometric evidence of 0 common neighbors should be 0")
	}
	if got := EvidenceScore(EvidenceGeometric, 1); got != 0.5 {
		t.Errorf("geometric evidence(1) = %g want 0.5", got)
	}
	if got := EvidenceScore(EvidenceGeometric, 2); got != 0.75 {
		t.Errorf("geometric evidence(2) = %g want 0.75", got)
	}
	if got := EvidenceScore(EvidenceGeometric, 100); got != 1 {
		t.Errorf("geometric evidence(100) = %g want 1", got)
	}
	// Exponential form is increasing and approaches 1.
	prev := 0.0
	for n := 1; n <= 20; n++ {
		v := EvidenceScore(EvidenceExponential, n)
		if v <= prev || v >= 1 {
			t.Fatalf("exponential evidence not increasing in (0,1): n=%d v=%g", n, v)
		}
		prev = v
	}
	// Multiplier semantics.
	if EvidenceMultiplier(EvidenceGeometric, 0, false) != 1 {
		t.Error("pass-through multiplier for n=0 should be 1")
	}
	if EvidenceMultiplier(EvidenceGeometric, 0, true) != 0 {
		t.Error("strict multiplier for n=0 should be 0")
	}
	if EvidenceMultiplier(EvidenceGeometric, 3, true) != EvidenceScore(EvidenceGeometric, 3) {
		t.Error("multiplier should equal score for n>0")
	}
}

// The neighborhood caps must bound the extracted subgraph.
func TestLocalNeighborhoodCaps(t *testing.T) {
	g := randomGraph(7, 20, 15, 120)
	cfg := DefaultConfig()
	lc := LocalConfig{Radius: 8, MaxQueries: 5, MaxAds: 4}
	scored, err := LocalSimilarities(g, 0, cfg, lc)
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) >= 5 {
		t.Errorf("caps ignored: %d partners scored with MaxQueries=5", len(scored))
	}
	// Unbounded configuration reaches at least as many partners.
	unbounded, err := LocalSimilarities(g, 0, cfg, LocalConfig{Radius: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(unbounded) < len(scored) {
		t.Errorf("unbounded run found fewer partners (%d) than capped (%d)", len(unbounded), len(scored))
	}
}

// Ad-side evidence must mirror query-side evidence through the
// symmetric roles of the two partitions.
func TestAdSideEvidence(t *testing.T) {
	g := clickgraph.Fig4K22()
	hp, _ := g.AdID("hp.com")
	bb, _ := g.AdID("bestbuy.com")
	// Two common queries → geometric evidence 0.75.
	if got := AdEvidence(g, EvidenceGeometric, hp, bb); got != 0.75 {
		t.Errorf("ad evidence = %v want 0.75", got)
	}
	cam, _ := g.QueryID("camera")
	dig, _ := g.QueryID("digital camera")
	if got := QueryEvidence(g, EvidenceGeometric, cam, dig); got != 0.75 {
		t.Errorf("query evidence = %v want 0.75", got)
	}
}
