package core

import (
	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// Warm-started iteration: instead of the identity start s0 = I, a run can
// seed its ping-pong frontiers from a previous generation's scores. The
// SimRank update is a contraction, so iteration converges to the same
// fixpoint from any start — but a start that is already near the fixpoint
// (yesterday's scores, on a graph that churned at the margins) crosses
// Config.Tolerance in a handful of iterations instead of the full
// schedule, and the change-tracked delta skip compounds: rows whose
// neighborhoods did not move freeze after the first pass. This is the
// compute half of the incremental refresh story; partition.DiffPlans
// decides which shards to run at all.

// ScoreSource is the read surface a warm start pulls prior scores from:
// node naming plus the ranked partner listings. It is the subset of
// serve.ScoreIndex the seeding needs, so both a live *Result and a loaded
// *serve.Snapshot qualify. Lookups go through names, never ids — the new
// graph may have re-interned nodes under different ids (such nodes live
// in dirty shards, but their *partners'* scores are still good seeds).
type ScoreSource interface {
	Query(id int) string
	Ad(id int) string
	QueryID(name string) (int, bool)
	AdID(name string) (int, bool)
	TopRewrites(q, k int) []sparse.Scored
	TopSimilarAds(a, k int) []sparse.Scored
}

// Result implements ScoreSource (via the serve.ScoreIndex surface).
var _ ScoreSource = (*Result)(nil)

// warmSeed fills the engine's starting frontiers; nil means the identity
// start. The frontiers are empty and un-compacted when it runs.
type warmSeed func(prevQ, prevA *sparse.PairFrontier)

// newWarmSeeder returns the seed that replays ws's scores onto g (a shard
// subgraph or a whole graph): every node is matched to its previous
// generation by name, its stored partner list is pulled once, and each
// partner that maps into g is seeded. Pairs are stored symmetrically in
// the source, so the j > i guard keeps exactly one copy. Partners outside
// g (the pair straddles a shard cut, or the node vanished) are dropped —
// the same pairs a cold per-shard run could never score.
func newWarmSeeder(ws ScoreSource, g *clickgraph.Graph) warmSeed {
	return func(prevQ, prevA *sparse.PairFrontier) {
		for q := 0; q < g.NumQueries(); q++ {
			old, ok := ws.QueryID(g.Query(q))
			if !ok {
				continue
			}
			for _, sc := range ws.TopRewrites(old, -1) {
				if nj, ok := g.QueryID(ws.Query(sc.Node)); ok && nj > q {
					prevQ.Add(q, nj, sc.Score)
				}
			}
		}
		for a := 0; a < g.NumAds(); a++ {
			old, ok := ws.AdID(g.Ad(a))
			if !ok {
				continue
			}
			for _, sc := range ws.TopSimilarAds(old, -1) {
				if nj, ok := g.AdID(ws.Ad(sc.Node)); ok && nj > a {
					prevA.Add(a, nj, sc.Score)
				}
			}
		}
	}
}

// unapplyEvidence divides every stored pair by its evidence multiplier —
// the inverse of applyEvidence. The Evidence variant iterates on raw
// SimRank scores and multiplies evidence in only at the end, so a warm
// seed drawn from stored Evidence scores must be mapped back to iteration
// space. Pairs whose multiplier is zero (strict evidence, no common
// neighbors) carry no information about the raw score and are dropped.
func unapplyEvidence(f *sparse.PairFrontier, ev *evidenceTable) {
	f.Map(func(i, j int, v float64) (float64, bool) {
		e := ev.score(i, j)
		if e == 0 {
			return 0, false
		}
		return v / e, true
	})
}
