package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// This file persists computed similarity results so a serving front-end
// can load precomputed rewrites instead of re-running SimRank: the
// batch/online split of Figure 2 in deployment form.
//
// The format is line-oriented text, mirroring the click graph format:
//
//	#simrankpp-scores v2
//	!meta  variant=<n> iterations=<n> c1=<f> c2=<f>
//	Q <query1> <TAB> <query2> <TAB> <score>
//	A <ad1>    <TAB> <ad2>    <TAB> <score>
//
// Node names are the graph's strings, so a result can be loaded against
// any graph containing the same names. Since v2, names containing the
// format's structural characters — tab, newline, carriage return — or a
// backslash are escaped on write (\t, \n, \r, \\) and unescaped on read;
// an unknown escape is rejected with the offending line number. v1 files
// (which stored names raw and could not represent structural characters)
// are still read, with no unescaping, so files written by older releases
// keep loading byte for byte. The binary snapshot format (internal/serve)
// length-prefixes names instead and needs no escaping.

const (
	scoresHeader   = "#simrankpp-scores v2"
	scoresHeaderV1 = "#simrankpp-scores v1"
)

// escapeName makes a node name safe for one tab-separated field.
func escapeName(s string) string {
	if !strings.ContainsAny(s, "\\\t\n\r") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\t':
			b.WriteString(`\t`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// unescapeName inverts escapeName, rejecting truncated or unknown escapes.
func unescapeName(s string) (string, error) {
	if !strings.Contains(s, `\`) {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i == len(s) {
			return "", fmt.Errorf("truncated escape at end of name %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		default:
			return "", fmt.Errorf("unknown escape \\%c in name %q", s[i], s)
		}
	}
	return b.String(), nil
}

// WriteResult serializes the result's query and ad pair scores.
func WriteResult(w io.Writer, r *Result) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, scoresHeader); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "!meta\tvariant=%d\titerations=%d\tc1=%s\tc2=%s\n",
		int(r.Config.Variant), r.Iterations,
		strconv.FormatFloat(r.Config.C1, 'g', -1, 64),
		strconv.FormatFloat(r.Config.C2, 'g', -1, 64)); err != nil {
		return err
	}
	var werr error
	emit := func(kind byte, n1, n2 string, v float64) bool {
		_, werr = fmt.Fprintf(bw, "%c\t%s\t%s\t%s\n", kind, escapeName(n1), escapeName(n2),
			strconv.FormatFloat(v, 'g', -1, 64))
		return werr == nil
	}
	r.QueryScores.Range(func(i, j int, v float64) bool {
		return emit('Q', r.Graph.Query(i), r.Graph.Query(j), v)
	})
	if werr != nil {
		return werr
	}
	r.AdScores.Range(func(i, j int, v float64) bool {
		return emit('A', r.Graph.Ad(i), r.Graph.Ad(j), v)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadResult loads scores against g: node names are resolved to g's ids.
// Names absent from g are an error — scores must match the graph they
// are served with. The returned Result has the persisted iteration count
// and decay factors in its Config; Converged is not persisted and
// reports false.
func ReadResult(r io.Reader, g *clickgraph.Graph) (*Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: empty scores stream")
	}
	escaped := true
	switch sc.Text() {
	case scoresHeader:
	case scoresHeaderV1:
		escaped = false
	default:
		return nil, fmt.Errorf("core: bad scores header %q", sc.Text())
	}
	res := &Result{
		Graph:       g,
		Config:      DefaultConfig(),
		QueryScores: sparse.NewPairTable(0),
		AdScores:    sparse.NewPairTable(0),
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if fields[0] == "!meta" {
			if err := parseMeta(fields[1:], res); err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineNo, err)
			}
			continue
		}
		if len(fields) != 4 || (fields[0] != "Q" && fields[0] != "A") {
			return nil, fmt.Errorf("core: line %d: want 'Q|A\\tname\\tname\\tscore'", lineNo)
		}
		v, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("core: line %d: bad score: %v", lineNo, err)
		}
		n1, n2 := fields[1], fields[2]
		if escaped {
			if n1, err = unescapeName(n1); err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineNo, err)
			}
			if n2, err = unescapeName(n2); err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineNo, err)
			}
		}
		if fields[0] == "Q" {
			i, ok1 := g.QueryID(n1)
			j, ok2 := g.QueryID(n2)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("core: line %d: query pair (%q,%q) not in graph", lineNo, n1, n2)
			}
			res.QueryScores.Set(i, j, v)
		} else {
			i, ok1 := g.AdID(n1)
			j, ok2 := g.AdID(n2)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("core: line %d: ad pair (%q,%q) not in graph", lineNo, n1, n2)
			}
			res.AdScores.Set(i, j, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

func parseMeta(kvs []string, res *Result) error {
	for _, kv := range kvs {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad meta field %q", kv)
		}
		switch parts[0] {
		case "variant":
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return fmt.Errorf("bad variant: %v", err)
			}
			res.Config.Variant = Variant(n)
		case "iterations":
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return fmt.Errorf("bad iterations: %v", err)
			}
			res.Iterations = n
			res.Config.Iterations = n
		case "c1":
			f, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return fmt.Errorf("bad c1: %v", err)
			}
			res.Config.C1 = f
		case "c2":
			f, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return fmt.Errorf("bad c2: %v", err)
			}
			res.Config.C2 = f
		default:
			// Unknown meta keys are ignored for forward compatibility.
		}
	}
	return nil
}
