package core

import (
	"fmt"
	"runtime"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// This file builds deterministic synthetic pass workloads and exposes the
// engine micro-benchmark bodies (map baseline vs frontier-scatter vs the
// default row-major passes) as plain run-n-times closures, so that both
// the in-package benchmarks (pass_bench_test.go) and cmd/corebench — which
// wraps them in testing.Benchmark to emit BENCH_core.json — share one
// definition without linking the testing package into production binaries.

// PassBenchConfig sizes the synthetic click graph the pass benchmarks run
// on and the worker count for the parallel variants.
type PassBenchConfig struct {
	Seed    uint64
	Queries int
	Ads     int
	Edges   int
	Workers int
}

// DefaultPassBenchConfig returns a mid-size workload: large enough that
// accumulation strategy dominates, small enough for a CI smoke run.
func DefaultPassBenchConfig() PassBenchConfig {
	return PassBenchConfig{Seed: 1, Queries: 500, Ads: 350, Edges: 5000, Workers: runtime.GOMAXPROCS(0)}
}

// PassBenchCase is one benchmarkable pass variant: Body runs the pass n
// times against a prebuilt workload.
type PassBenchCase struct {
	Name string
	Body func(n int)
}

// passBenchVariants is the fixed benchmark matrix: the map baseline, the
// frontier-scatter formulation, and the default row-major pass serial and
// parallel.
var passBenchVariants = []string{"map", "scatter", "frontier", "parallel"}

// passBenchState holds one side's pass inputs plus the warmed-up previous
// iteration's scores in every representation the pass variants consume.
type passBenchState struct {
	in     *passInputs
	cfg    Config
	nq, na int
	prevAF *sparse.PairFrontier // opposite (ad) side, frontier form
	prevAM *sparse.PairTable    // opposite (ad) side, map form
	symA   *sparse.SymAdj       // opposite (ad) side, symmetric adjacency
}

// benchGraph builds a deterministic pseudo-random bipartite click graph.
func benchGraph(seed uint64, nq, na, edges int) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	s := seed
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	for i := 0; i < nq; i++ {
		b.AddQuery(fmt.Sprintf("q%d", i))
	}
	for e := 0; e < edges; e++ {
		q := next(nq)
		a := next(na)
		clicks := int64(next(20) + 1)
		err := b.AddEdge(fmt.Sprintf("q%d", q), fmt.Sprintf("ad%d", a), clickgraph.EdgeWeights{
			Impressions: clicks * 3, Clicks: clicks,
			ExpectedClickRate: float64(next(100)) / 100,
		})
		if err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// newPassBenchState warms the engine for three iterations so the measured
// pass sees a realistic mid-run score distribution.
func newPassBenchState(bc PassBenchConfig, variant Variant) *passBenchState {
	g := benchGraph(bc.Seed, bc.Queries, bc.Ads, bc.Edges)
	cfg := DefaultConfig().WithVariant(variant)
	cfg.Channel = ChannelClicks
	cfg.Iterations = 3
	cfg.PruneEpsilon = 1e-5
	warm, err := Run(g, cfg)
	if err != nil {
		panic(err)
	}
	prevAF := sparse.FrontierFromPairTable(warm.AdScores, g.NumAds())
	return &passBenchState{
		in:     newPassInputs(g, cfg),
		cfg:    cfg,
		nq:     g.NumQueries(),
		na:     g.NumAds(),
		prevAF: prevAF,
		prevAM: warm.AdScores,
		symA:   prevAF.ExpandSymmetric(nil),
	}
}

// benchSimplePass returns the simple-pass benchmark bodies keyed by
// variant name, all computing the same query-side update.
func benchSimplePass(st *passBenchState, workers int) map[string]func(n int) {
	side := st.nq + st.na
	return map[string]func(n int){
		"map": func(n int) {
			for i := 0; i < n; i++ {
				simplePassMap(st.prevAM, st.in.qNbr, st.in.aNbr, st.cfg.C1)
			}
		},
		"scatter": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			for i := 0; i < n; i++ {
				simplePassScatter(st.prevAF, st.in.qNbr, st.in.aNbr, st.cfg.C1, dst, 1, nil)
			}
		},
		"frontier": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(1, side)
			for i := 0; i < n; i++ {
				simplePass(st.symA, st.in.qNbr, st.in.aNbr, st.cfg.C1, dst, 1, spas)
			}
		},
		"parallel": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(workers, side)
			for i := 0; i < n; i++ {
				simplePass(st.symA, st.in.qNbr, st.in.aNbr, st.cfg.C1, dst, workers, spas)
			}
		},
	}
}

// benchWeightedPass mirrors benchSimplePass for the weighted pass.
func benchWeightedPass(st *passBenchState, workers int) map[string]func(n int) {
	side := st.nq + st.na
	return map[string]func(n int){
		"map": func(n int) {
			for i := 0; i < n; i++ {
				weightedPassMap(st.prevAM, st.in.qNbr, st.in.aNbr, st.in.qW, st.in.evQ, st.cfg.C1)
			}
		},
		"scatter": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			for i := 0; i < n; i++ {
				weightedPassScatter(st.prevAF, st.in.qNbr, st.in.aNbr, st.in.revWQ, st.in.evQ, st.cfg.C1, dst, 1, nil)
			}
		},
		"frontier": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(1, side)
			for i := 0; i < n; i++ {
				weightedPass(st.symA, st.in.qNbr, st.in.aNbr, st.in.qW, st.in.revWQ, st.in.evQ, st.cfg.C1, dst, 1, spas)
			}
		},
		"parallel": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(workers, side)
			for i := 0; i < n; i++ {
				weightedPass(st.symA, st.in.qNbr, st.in.aNbr, st.in.qW, st.in.revWQ, st.in.evQ, st.cfg.C1, dst, workers, spas)
			}
		},
	}
}

// PassBenchCases builds the full benchmark matrix (pass × variant) in a
// fixed order. Each case's Body runs against shared prebuilt state, so
// measurements exclude graph construction and warm-up.
func PassBenchCases(bc PassBenchConfig) []PassBenchCase {
	if bc.Workers <= 0 {
		bc.Workers = runtime.GOMAXPROCS(0)
	}
	var out []PassBenchCase
	add := func(prefix string, bodies map[string]func(n int)) {
		for _, variant := range passBenchVariants {
			out = append(out, PassBenchCase{Name: prefix + "/" + variant, Body: bodies[variant]})
		}
	}
	add("SimplePass", benchSimplePass(newPassBenchState(bc, Simple), bc.Workers))
	add("WeightedPass", benchWeightedPass(newPassBenchState(bc, Weighted), bc.Workers))
	return out
}
