package core

import (
	"fmt"
	"runtime"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/sparse"
)

// This file builds deterministic synthetic pass workloads and exposes the
// engine micro-benchmark bodies (map baseline vs frontier-scatter vs the
// default row-major passes) as plain run-n-times closures, so that both
// the in-package benchmarks (pass_bench_test.go) and cmd/corebench — which
// wraps them in testing.Benchmark to emit BENCH_core.json — share one
// definition without linking the testing package into production binaries.

// PassBenchConfig sizes the synthetic click graph the pass benchmarks run
// on and the worker count for the parallel variants.
type PassBenchConfig struct {
	Seed    uint64
	Queries int
	Ads     int
	Edges   int
	Workers int
}

// DefaultPassBenchConfig returns a mid-size workload: large enough that
// accumulation strategy dominates, small enough for a CI smoke run.
func DefaultPassBenchConfig() PassBenchConfig {
	return PassBenchConfig{Seed: 1, Queries: 500, Ads: 350, Edges: 5000, Workers: runtime.GOMAXPROCS(0)}
}

// PassBenchCase is one benchmarkable pass variant: Body runs the pass n
// times against a prebuilt workload.
type PassBenchCase struct {
	Name string
	Body func(n int)
}

// passBenchVariants is the fixed benchmark matrix: the map baseline, the
// frontier-scatter formulation, and the default row-major pass serial and
// parallel.
var passBenchVariants = []string{"map", "scatter", "frontier", "parallel"}

// passBenchState holds one side's pass inputs plus the warmed-up previous
// iteration's scores in every representation the pass variants consume.
type passBenchState struct {
	in     *passInputs
	cfg    Config
	nq, na int
	prevAF *sparse.PairFrontier // opposite (ad) side, frontier form
	prevAM *sparse.PairTable    // opposite (ad) side, map form
	symA   *sparse.SymAdj       // opposite (ad) side, symmetric adjacency
}

// benchGraph builds a deterministic pseudo-random bipartite click graph.
func benchGraph(seed uint64, nq, na, edges int) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	s := seed
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	for i := 0; i < nq; i++ {
		b.AddQuery(fmt.Sprintf("q%d", i))
	}
	for e := 0; e < edges; e++ {
		q := next(nq)
		a := next(na)
		clicks := int64(next(20) + 1)
		err := b.AddEdge(fmt.Sprintf("q%d", q), fmt.Sprintf("ad%d", a), clickgraph.EdgeWeights{
			Impressions: clicks * 3, Clicks: clicks,
			ExpectedClickRate: float64(next(100)) / 100,
		})
		if err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// newPassBenchState warms the engine for three iterations so the measured
// pass sees a realistic mid-run score distribution.
func newPassBenchState(bc PassBenchConfig, variant Variant) *passBenchState {
	g := benchGraph(bc.Seed, bc.Queries, bc.Ads, bc.Edges)
	cfg := DefaultConfig().WithVariant(variant)
	cfg.Channel = ChannelClicks
	cfg.Iterations = 3
	cfg.PruneEpsilon = 1e-5
	warm, err := Run(g, cfg)
	if err != nil {
		panic(err)
	}
	prevAF := sparse.FrontierFromPairTable(warm.AdScores, g.NumAds())
	return &passBenchState{
		in:     newPassInputs(g, cfg),
		cfg:    cfg,
		nq:     g.NumQueries(),
		na:     g.NumAds(),
		prevAF: prevAF,
		prevAM: warm.AdScores,
		symA:   prevAF.ExpandSymmetric(nil),
	}
}

// benchSimplePass returns the simple-pass benchmark bodies keyed by
// variant name, all computing the same query-side update.
func benchSimplePass(st *passBenchState, workers int) map[string]func(n int) {
	side := st.nq + st.na
	return map[string]func(n int){
		"map": func(n int) {
			for i := 0; i < n; i++ {
				simplePassMap(st.prevAM, st.in.qNbr, st.in.aNbr, st.cfg.C1)
			}
		},
		"scatter": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			for i := 0; i < n; i++ {
				simplePassScatter(st.prevAF, st.in.qNbr, st.in.aNbr, st.cfg.C1, dst, 1, nil)
			}
		},
		"frontier": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(1, side)
			for i := 0; i < n; i++ {
				simplePass(st.symA, st.in.qNbr, st.in.aNbr, st.cfg.C1, dst, nil, nil, 1, spas)
			}
		},
		"parallel": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(workers, side)
			for i := 0; i < n; i++ {
				simplePass(st.symA, st.in.qNbr, st.in.aNbr, st.cfg.C1, dst, nil, nil, workers, spas)
			}
		},
	}
}

// benchWeightedPass mirrors benchSimplePass for the weighted pass.
func benchWeightedPass(st *passBenchState, workers int) map[string]func(n int) {
	side := st.nq + st.na
	return map[string]func(n int){
		"map": func(n int) {
			for i := 0; i < n; i++ {
				weightedPassMap(st.prevAM, st.in.qNbr, st.in.aNbr, st.in.qW, st.in.evQ, st.cfg.C1)
			}
		},
		"scatter": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			for i := 0; i < n; i++ {
				weightedPassScatter(st.prevAF, st.in.qNbr, st.in.aNbr, st.in.revWQ, st.in.evQ, st.cfg.C1, dst, 1, nil)
			}
		},
		"frontier": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(1, side)
			for i := 0; i < n; i++ {
				weightedPass(st.symA, st.in.qNbr, st.in.aNbr, st.in.qW, st.in.revWQ, st.in.evQ, st.cfg.C1, dst, nil, nil, 1, spas)
			}
		},
		"parallel": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(workers, side)
			for i := 0; i < n; i++ {
				weightedPass(st.symA, st.in.qNbr, st.in.aNbr, st.in.qW, st.in.revWQ, st.in.evQ, st.cfg.C1, dst, nil, nil, workers, spas)
			}
		},
	}
}

// PassBenchCases builds the full benchmark matrix (pass × variant) in a
// fixed order. Each case's Body runs against shared prebuilt state, so
// measurements exclude graph construction and warm-up.
func PassBenchCases(bc PassBenchConfig) []PassBenchCase {
	if bc.Workers <= 0 {
		bc.Workers = runtime.GOMAXPROCS(0)
	}
	var out []PassBenchCase
	add := func(prefix string, bodies map[string]func(n int)) {
		for _, variant := range passBenchVariants {
			out = append(out, PassBenchCase{Name: prefix + "/" + variant, Body: bodies[variant]})
		}
	}
	add("SimplePass", benchSimplePass(newPassBenchState(bc, Simple), bc.Workers))
	add("WeightedPass", benchWeightedPass(newPassBenchState(bc, Weighted), bc.Workers))
	return out
}

// evidenceCountsViaAdd is the pre-fusion evidence build (one
// PairFrontier.Add per co-occurrence event, multiplier deferred to
// lookup), retained as the baseline EvidenceBuildBenchCases measures the
// sorted per-row scatter against.
func evidenceCountsViaAdd(n int, oppNbr [][]int) *sparse.PairFrontier {
	counts := sparse.NewPairFrontier(n)
	for _, nbrs := range oppNbr {
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				counts.Add(nbrs[x], nbrs[y], 1)
			}
		}
	}
	counts.Compact()
	return counts
}

// EvidenceBuildBenchCases benchmarks building the query-side evidence
// table on the bench graph: "add" is the old per-pair accumulation of raw
// counts, "scatter" the current sorted per-row scatter (which additionally
// precomputes every multiplier and expands the symmetric CSR the fused
// harvest reads).
func EvidenceBuildBenchCases(bc PassBenchConfig) []PassBenchCase {
	g := benchGraph(bc.Seed, bc.Queries, bc.Ads, bc.Edges)
	nq := g.NumQueries()
	aNbr := make([][]int, g.NumAds())
	for a := range aNbr {
		aNbr[a], _ = g.QueriesOf(a)
	}
	return []PassBenchCase{
		{Name: "EvidenceBuild/add", Body: func(n int) {
			for i := 0; i < n; i++ {
				evidenceCountsViaAdd(nq, aNbr)
			}
		}},
		{Name: "EvidenceBuild/scatter", Body: func(n int) {
			for i := 0; i < n; i++ {
				newEvidenceTable(nq, aNbr, EvidenceGeometric, false)
			}
		}},
	}
}

// IterationTrajectory runs the full weighted engine on the bench graph for
// the given number of iterations (no early stop) and returns the
// per-iteration stats: wall time plus how many rows the change-tracked
// delta skip copied forward. skipTol maps to Config.DeltaSkipTolerance;
// negative disables delta skipping, giving the full-recompute reference
// trajectory.
//
// The channel picks the convergence regime on the synthetic bench graph:
// ChannelRate (the paper's default) keeps every score alive, so rows only
// freeze within a positive skipTol; ChannelClicks drains the run — its
// spread factor e^{-Var} pushes every score below the prune threshold —
// so after two iterations exact skipping copies the whole graph forward.
func IterationTrajectory(bc PassBenchConfig, iterations int, skipTol float64, channel WeightChannel) []IterationStat {
	if bc.Workers <= 0 {
		bc.Workers = runtime.GOMAXPROCS(0)
	}
	g := benchGraph(bc.Seed, bc.Queries, bc.Ads, bc.Edges)
	cfg := DefaultConfig().WithVariant(Weighted)
	cfg.Channel = channel
	cfg.Iterations = iterations
	cfg.PruneEpsilon = 1e-5
	if skipTol < 0 {
		cfg.DisableDeltaSkip = true
	} else {
		cfg.DeltaSkipTolerance = skipTol
	}
	res, err := RunParallel(g, cfg, bc.Workers)
	if err != nil {
		panic(err)
	}
	return res.IterStats
}

// IterTrajectoryModes is the fixed trajectory matrix corebench records and
// BenchmarkWeightedIterations runs: full recompute as the reference, exact
// and tolerance-scaled delta skipping on the live (rate-channel) workload,
// and exact skipping on the drained (clicks-channel) workload where rows
// genuinely freeze.
var IterTrajectoryModes = []struct {
	Name    string
	Channel WeightChannel
	SkipTol float64 // negative: delta skip disabled
}{
	{"full", ChannelRate, -1},
	{"delta-exact", ChannelRate, 0},
	{"delta-tol1e-5", ChannelRate, 1e-5},
	{"drained-delta-exact", ChannelClicks, 0},
}
