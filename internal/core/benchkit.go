package core

import (
	"fmt"
	"runtime"
	"time"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/partition"
	"simrankpp/internal/sparse"
)

// This file builds deterministic synthetic pass workloads and exposes the
// engine micro-benchmark bodies (map baseline vs frontier-scatter vs the
// default row-major passes) as plain run-n-times closures, so that both
// the in-package benchmarks (pass_bench_test.go) and cmd/corebench — which
// wraps them in testing.Benchmark to emit BENCH_core.json — share one
// definition without linking the testing package into production binaries.

// PassBenchConfig sizes the synthetic click graph the pass benchmarks run
// on and the worker count for the parallel variants.
type PassBenchConfig struct {
	Seed    uint64
	Queries int
	Ads     int
	Edges   int
	Workers int
}

// DefaultPassBenchConfig returns a mid-size workload: large enough that
// accumulation strategy dominates, small enough for a CI smoke run.
func DefaultPassBenchConfig() PassBenchConfig {
	return PassBenchConfig{Seed: 1, Queries: 500, Ads: 350, Edges: 5000, Workers: runtime.GOMAXPROCS(0)}
}

// PassBenchCase is one benchmarkable pass variant: Body runs the pass n
// times against a prebuilt workload.
type PassBenchCase struct {
	Name string
	Body func(n int)
}

// passBenchVariants is the fixed benchmark matrix: the map baseline, the
// frontier-scatter formulation, and the default row-major pass serial and
// parallel.
var passBenchVariants = []string{"map", "scatter", "frontier", "parallel"}

// passBenchState holds one side's pass inputs plus the warmed-up previous
// iteration's scores in every representation the pass variants consume.
type passBenchState struct {
	in     *passInputs
	cfg    Config
	nq, na int
	prevAF *sparse.PairFrontier // opposite (ad) side, frontier form
	prevAM *sparse.PairTable    // opposite (ad) side, map form
	symA   *sparse.SymAdj       // opposite (ad) side, symmetric adjacency
}

// addBenchCluster adds one deterministic pseudo-random bipartite cluster
// to the builder. Node names are prefixed, so clusters with distinct
// prefixes are vertex-disjoint — each its own connected component (up to
// edge sampling leaving some nodes isolated).
func addBenchCluster(b *clickgraph.Builder, prefix string, seed uint64, nq, na, edges int) {
	s := seed
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	for i := 0; i < nq; i++ {
		b.AddQuery(fmt.Sprintf("%sq%d", prefix, i))
	}
	for e := 0; e < edges; e++ {
		q := next(nq)
		a := next(na)
		clicks := int64(next(20) + 1)
		err := b.AddEdge(fmt.Sprintf("%sq%d", prefix, q), fmt.Sprintf("%sad%d", prefix, a), clickgraph.EdgeWeights{
			Impressions: clicks * 3, Clicks: clicks,
			ExpectedClickRate: float64(next(100)) / 100,
		})
		if err != nil {
			panic(err)
		}
	}
}

// addBenchClusterStable is addBenchCluster with every node — queries AND
// ads — interned before any edge is sampled. Node ids then depend only on
// the cluster layout, never on the edge seed, which is the property the
// evolving (refresh) workload needs: re-sampling one cluster's edges must
// not shift any other cluster's global ids, or every shard would read as
// moved. (addBenchCluster itself is left alone so the recorded pass/shard
// workloads keep their historical shape.)
func addBenchClusterStable(b *clickgraph.Builder, prefix string, seed uint64, nq, na, edges int) {
	for i := 0; i < na; i++ {
		b.AddAd(fmt.Sprintf("%sad%d", prefix, i))
	}
	addBenchCluster(b, prefix, seed, nq, na, edges)
}

// RefreshWorkloadGraph builds step s of the evolving multi-cluster
// workload: the same cluster layout as MultiClusterGraph (stable node
// interning), where step s ≥ 1 re-samples the edges of cluster
// (s-1) mod Clusters with a step-dependent seed — one cluster's worth of
// churn, ≈ ClusterEdges / total edges of the graph (≈ 5% on the default
// workload). Steps are cumulative: a cluster churned at step s keeps its
// step-s edges until a later step hits it again, so chaining refreshes
// from step to step models successive daily click logs. The giant
// component never churns. Step 0 is the base graph.
func RefreshWorkloadGraph(bc ShardBenchConfig, step int) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	for c := 0; c < bc.Clusters; c++ {
		seed := bc.Seed + uint64(c)*1000003
		// The latest step ≤ step that churned cluster c, if any.
		if step >= c+1 {
			last := c + 1 + bc.Clusters*((step-1-c)/bc.Clusters)
			seed += uint64(last) * 7777779
		}
		addBenchClusterStable(b, fmt.Sprintf("c%d-", c), seed, bc.ClusterQueries, bc.ClusterAds, bc.ClusterEdges)
	}
	addBenchClusterStable(b, "g-", bc.Seed+999999937, bc.GiantQueries, bc.GiantAds, bc.GiantEdges)
	return b.Build()
}

// ShardBenchRunConfig exposes the workload's engine configuration
// (PERF.md's production mode plus the convergence tolerance) so the
// refresh benchmark runs its full rebuilds and its refreshes under
// exactly the recorded settings.
func ShardBenchRunConfig(bc ShardBenchConfig) Config { return shardBenchRunConfig(bc) }

// benchGraph builds a deterministic pseudo-random bipartite click graph.
func benchGraph(seed uint64, nq, na, edges int) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	addBenchCluster(b, "", seed, nq, na, edges)
	return b.Build()
}

// newPassBenchState warms the engine for three iterations so the measured
// pass sees a realistic mid-run score distribution.
func newPassBenchState(bc PassBenchConfig, variant Variant) *passBenchState {
	g := benchGraph(bc.Seed, bc.Queries, bc.Ads, bc.Edges)
	cfg := DefaultConfig().WithVariant(variant)
	cfg.Channel = ChannelClicks
	cfg.Iterations = 3
	cfg.PruneEpsilon = 1e-5
	warm, err := Run(g, cfg)
	if err != nil {
		panic(err)
	}
	prevAF := sparse.FrontierFromPairTable(warm.AdScores, g.NumAds())
	return &passBenchState{
		in:     newPassInputs(g, cfg),
		cfg:    cfg,
		nq:     g.NumQueries(),
		na:     g.NumAds(),
		prevAF: prevAF,
		prevAM: warm.AdScores,
		symA:   prevAF.ExpandSymmetric(nil),
	}
}

// benchSimplePass returns the simple-pass benchmark bodies keyed by
// variant name, all computing the same query-side update.
func benchSimplePass(st *passBenchState, workers int) map[string]func(n int) {
	side := st.nq + st.na
	return map[string]func(n int){
		"map": func(n int) {
			for i := 0; i < n; i++ {
				simplePassMap(st.prevAM, st.in.qNbr, st.in.aNbr, st.cfg.C1)
			}
		},
		"scatter": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			for i := 0; i < n; i++ {
				simplePassScatter(st.prevAF, st.in.qNbr, st.in.aNbr, st.cfg.C1, dst, 1, nil)
			}
		},
		"frontier": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(1, side)
			for i := 0; i < n; i++ {
				simplePass(st.symA, st.in.qNbr, st.in.aNbr, st.cfg.C1, dst, nil, nil, 1, spas)
			}
		},
		"parallel": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(workers, side)
			for i := 0; i < n; i++ {
				simplePass(st.symA, st.in.qNbr, st.in.aNbr, st.cfg.C1, dst, nil, nil, workers, spas)
			}
		},
	}
}

// benchWeightedPass mirrors benchSimplePass for the weighted pass.
func benchWeightedPass(st *passBenchState, workers int) map[string]func(n int) {
	side := st.nq + st.na
	return map[string]func(n int){
		"map": func(n int) {
			for i := 0; i < n; i++ {
				weightedPassMap(st.prevAM, st.in.qNbr, st.in.aNbr, st.in.qW, st.in.evQ, st.cfg.C1)
			}
		},
		"scatter": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			for i := 0; i < n; i++ {
				weightedPassScatter(st.prevAF, st.in.qNbr, st.in.aNbr, st.in.revWQ, st.in.evQ, st.cfg.C1, dst, 1, nil)
			}
		},
		"frontier": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(1, side)
			for i := 0; i < n; i++ {
				weightedPass(st.symA, st.in.qNbr, st.in.aNbr, st.in.qW, st.in.revWQ, st.in.evQ, st.cfg.C1, dst, nil, nil, 1, spas)
			}
		},
		"parallel": func(n int) {
			dst := sparse.NewPairFrontier(st.nq)
			spas := newSPAs(workers, side)
			for i := 0; i < n; i++ {
				weightedPass(st.symA, st.in.qNbr, st.in.aNbr, st.in.qW, st.in.revWQ, st.in.evQ, st.cfg.C1, dst, nil, nil, workers, spas)
			}
		},
	}
}

// PassBenchCases builds the full benchmark matrix (pass × variant) in a
// fixed order. Each case's Body runs against shared prebuilt state, so
// measurements exclude graph construction and warm-up.
func PassBenchCases(bc PassBenchConfig) []PassBenchCase {
	if bc.Workers <= 0 {
		bc.Workers = runtime.GOMAXPROCS(0)
	}
	var out []PassBenchCase
	add := func(prefix string, bodies map[string]func(n int)) {
		for _, variant := range passBenchVariants {
			out = append(out, PassBenchCase{Name: prefix + "/" + variant, Body: bodies[variant]})
		}
	}
	add("SimplePass", benchSimplePass(newPassBenchState(bc, Simple), bc.Workers))
	add("WeightedPass", benchWeightedPass(newPassBenchState(bc, Weighted), bc.Workers))
	return out
}

// evidenceCountsViaAdd is the pre-fusion evidence build (one
// PairFrontier.Add per co-occurrence event, multiplier deferred to
// lookup), retained as the baseline EvidenceBuildBenchCases measures the
// sorted per-row scatter against.
func evidenceCountsViaAdd(n int, oppNbr [][]int) *sparse.PairFrontier {
	counts := sparse.NewPairFrontier(n)
	for _, nbrs := range oppNbr {
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				counts.Add(nbrs[x], nbrs[y], 1)
			}
		}
	}
	counts.Compact()
	return counts
}

// EvidenceBuildBenchCases benchmarks building the query-side evidence
// table on the bench graph: "add" is the old per-pair accumulation of raw
// counts, "scatter" the current sorted per-row scatter (which additionally
// precomputes every multiplier and expands the symmetric CSR the fused
// harvest reads).
func EvidenceBuildBenchCases(bc PassBenchConfig) []PassBenchCase {
	g := benchGraph(bc.Seed, bc.Queries, bc.Ads, bc.Edges)
	nq := g.NumQueries()
	aNbr := make([][]int, g.NumAds())
	for a := range aNbr {
		aNbr[a], _ = g.QueriesOf(a)
	}
	return []PassBenchCase{
		{Name: "EvidenceBuild/add", Body: func(n int) {
			for i := 0; i < n; i++ {
				evidenceCountsViaAdd(nq, aNbr)
			}
		}},
		{Name: "EvidenceBuild/scatter", Body: func(n int) {
			for i := 0; i < n; i++ {
				newEvidenceTable(nq, aNbr, EvidenceGeometric, false)
			}
		}},
	}
}

// IterationTrajectory runs the full weighted engine on the bench graph for
// the given number of iterations (no early stop) and returns the
// per-iteration stats: wall time plus how many rows the change-tracked
// delta skip copied forward. skipTol maps to Config.DeltaSkipTolerance;
// negative disables delta skipping, giving the full-recompute reference
// trajectory.
//
// The channel picks the convergence regime on the synthetic bench graph:
// ChannelRate (the paper's default) keeps every score alive, so rows only
// freeze within a positive skipTol; ChannelClicks drains the run — its
// spread factor e^{-Var} pushes every score below the prune threshold —
// so after two iterations exact skipping copies the whole graph forward.
func IterationTrajectory(bc PassBenchConfig, iterations int, skipTol float64, channel WeightChannel) []IterationStat {
	if bc.Workers <= 0 {
		bc.Workers = runtime.GOMAXPROCS(0)
	}
	g := benchGraph(bc.Seed, bc.Queries, bc.Ads, bc.Edges)
	cfg := DefaultConfig().WithVariant(Weighted)
	cfg.Channel = channel
	cfg.Iterations = iterations
	cfg.PruneEpsilon = 1e-5
	if skipTol < 0 {
		cfg.DisableDeltaSkip = true
	} else {
		cfg.DeltaSkipTolerance = skipTol
	}
	res, err := RunParallel(g, cfg, bc.Workers)
	if err != nil {
		panic(err)
	}
	return res.IterStats
}

// ShardBenchConfig sizes the multi-cluster shard workload: Clusters
// medium components plus one giant component, the shape of a real click
// log (many niche markets, one head market). The giant exceeds the shard
// budget, so the plan packs the medium clusters into exact shards and
// carves the giant with ACL cuts.
type ShardBenchConfig struct {
	Seed           uint64  `json:"seed"`
	Clusters       int     `json:"clusters"`
	ClusterQueries int     `json:"cluster_queries"`
	ClusterAds     int     `json:"cluster_ads"`
	ClusterEdges   int     `json:"cluster_edges"`
	GiantQueries   int     `json:"giant_queries"`
	GiantAds       int     `json:"giant_ads"`
	GiantEdges     int     `json:"giant_edges"`
	MaxShardNodes  int     `json:"max_shard_nodes"`
	Workers        int     `json:"workers"`
	Iterations     int     `json:"iterations"`
	Tolerance      float64 `json:"tolerance"`
}

// DefaultShardBenchConfig returns the recorded workload: 16 medium
// clusters plus a giant component about five times a cluster's size,
// under a budget that packs the clusters and carves the giant. The run
// config mirrors PERF.md's production mode (weighted, rate channel,
// pruning, tolerance-scaled delta skip) with a convergence tolerance, so
// the sharded run can stop finished shards early — the serial half of the
// win; the worker pool is the parallel half.
func DefaultShardBenchConfig() ShardBenchConfig {
	return ShardBenchConfig{
		Seed: 7, Clusters: 16,
		ClusterQueries: 130, ClusterAds: 90, ClusterEdges: 1000,
		GiantQueries: 650, GiantAds: 450, GiantEdges: 5500,
		MaxShardNodes: 400, Workers: runtime.GOMAXPROCS(0),
		Iterations: 15, Tolerance: 1e-4,
	}
}

// SmokeShardBenchConfig returns a seconds-scale variant for CI.
func SmokeShardBenchConfig() ShardBenchConfig {
	bc := DefaultShardBenchConfig()
	bc.Clusters = 4
	bc.ClusterQueries, bc.ClusterAds, bc.ClusterEdges = 60, 40, 400
	bc.GiantQueries, bc.GiantAds, bc.GiantEdges = 240, 160, 1800
	bc.MaxShardNodes = 200
	bc.Iterations = 8
	return bc
}

// MultiClusterGraph builds the workload's click graph.
func MultiClusterGraph(bc ShardBenchConfig) *clickgraph.Graph {
	b := clickgraph.NewBuilder()
	for c := 0; c < bc.Clusters; c++ {
		addBenchCluster(b, fmt.Sprintf("c%d-", c), bc.Seed+uint64(c)*1000003, bc.ClusterQueries, bc.ClusterAds, bc.ClusterEdges)
	}
	addBenchCluster(b, "g-", bc.Seed+999999937, bc.GiantQueries, bc.GiantAds, bc.GiantEdges)
	return b.Build()
}

// shardBenchRunConfig is the engine configuration both sides of the
// comparison run: PERF.md's production mode plus the workload's
// convergence tolerance.
func shardBenchRunConfig(bc ShardBenchConfig) Config {
	cfg := DefaultConfig().WithVariant(Weighted)
	cfg.Iterations = bc.Iterations
	cfg.Tolerance = bc.Tolerance
	cfg.PruneEpsilon = 1e-5
	cfg.DeltaSkipTolerance = 1e-5
	return cfg
}

// ShardBenchResult is one monolithic-vs-sharded measurement on the
// multi-cluster workload.
type ShardBenchResult struct {
	// Graph and plan shape.
	Queries       int  `json:"queries"`
	Ads           int  `json:"ads"`
	Edges         int  `json:"edges"`
	Shards        int  `json:"shards"`
	ExactPlan     bool `json:"exact_plan"`
	TotalCutEdges int  `json:"total_cut_edges"`
	// Wall-clock, best of the harness's repetitions. PlanNs is the
	// one-time partition.BuildPlan cost (ACL pushes + sweep cuts), kept
	// separate because a deployment plans once and runs per refresh; the
	// run comparison is ShardedNs vs MonolithicNs, the end-to-end one
	// (PlanNs + ShardedNs) vs MonolithicNs.
	PlanNs       int64 `json:"plan_ns"`
	MonolithicNs int64 `json:"monolithic_ns"`
	ShardedNs    int64 `json:"sharded_ns"`
	// Iterations actually run (tolerance can stop either side early; for
	// the sharded run this is the slowest shard's count).
	MonolithicIters int `json:"monolithic_iters"`
	ShardedIters    int `json:"sharded_iters"`
	// Peak dense-accumulator footprint: the monolithic engine's SPA is
	// sized to the whole graph's larger side, each shard's only to its
	// own. MaxShardSPABytes is the largest any single shard needed.
	MonolithicSPABytes int64 `json:"monolithic_spa_bytes"`
	MaxShardSPABytes   int64 `json:"max_shard_spa_bytes"`
	// Per-iteration wall-time trajectories (ns): the monolithic engine's
	// and, for the sharded run, the per-index sum over shards (total
	// work; finished shards stop contributing, which is the point).
	MonolithicIterNs []int64 `json:"monolithic_iter_ns"`
	ShardedIterNs    []int64 `json:"sharded_iter_ns"`
}

// RunShardBench builds the workload, plans it, and measures one
// monolithic serial run against one sharded run (reps repetitions each,
// best wall time kept). It returns the measurement, the plan, and the
// best sharded Result with its per-shard scores retained — the snapshot
// serving benchmark serializes that same result, so the serving numbers
// describe exactly the workload the shard numbers do, without a second
// engine run.
func RunShardBench(bc ShardBenchConfig, reps int) (ShardBenchResult, *partition.Plan, *Result, error) {
	if reps < 1 {
		reps = 1
	}
	if bc.Workers <= 0 {
		bc.Workers = runtime.GOMAXPROCS(0)
	}
	g := MultiClusterGraph(bc)
	cfg := shardBenchRunConfig(bc)
	pcfg := partition.DefaultPlanConfig()
	pcfg.MaxShardNodes = bc.MaxShardNodes
	pcfg.MinCutNodes = bc.MaxShardNodes / 4
	tPlan := time.Now()
	plan, err := partition.BuildPlan(g, pcfg)
	if err != nil {
		return ShardBenchResult{}, nil, nil, err
	}

	out := ShardBenchResult{
		Queries: g.NumQueries(), Ads: g.NumAds(), Edges: g.NumEdges(),
		Shards: len(plan.Shards), ExactPlan: plan.Exact, TotalCutEdges: plan.TotalCutEdges,
		PlanNs: time.Since(tPlan).Nanoseconds(),
	}
	side := g.NumQueries()
	if na := g.NumAds(); na > side {
		side = na
	}
	out.MonolithicSPABytes = int64(side) * 16

	for r := 0; r < reps; r++ {
		t0 := time.Now()
		mono, err := Run(g, cfg)
		if err != nil {
			return ShardBenchResult{}, nil, nil, err
		}
		ns := time.Since(t0).Nanoseconds()
		if r == 0 || ns < out.MonolithicNs {
			out.MonolithicNs = ns
			out.MonolithicIters = mono.Iterations
			out.MonolithicIterNs = iterNs(mono.IterStats)
		}
	}
	var best *Result
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		// Shard scores are retained (pointer-sized bookkeeping, no table
		// copies) so the serving benchmark can serialize this run.
		sharded, err := RunSharded(g, cfg, plan, ShardOptions{Workers: bc.Workers, RetainShardScores: true})
		if err != nil {
			return ShardBenchResult{}, nil, nil, err
		}
		ns := time.Since(t0).Nanoseconds()
		if r == 0 || ns < out.ShardedNs {
			best = sharded
			out.ShardedNs = ns
			out.ShardedIters = sharded.Iterations
			out.ShardedIterNs = iterNs(sharded.IterStats)
			out.MaxShardSPABytes = 0
			for _, s := range sharded.ShardStats {
				if s.SPABytes > out.MaxShardSPABytes {
					out.MaxShardSPABytes = s.SPABytes
				}
			}
		}
	}
	return out, plan, best, nil
}

func iterNs(stats []IterationStat) []int64 {
	out := make([]int64, len(stats))
	for i, s := range stats {
		out[i] = s.Duration.Nanoseconds()
	}
	return out
}

// IterTrajectoryModes is the fixed trajectory matrix corebench records and
// BenchmarkWeightedIterations runs: full recompute as the reference, exact
// and tolerance-scaled delta skipping on the live (rate-channel) workload,
// and exact skipping on the drained (clicks-channel) workload where rows
// genuinely freeze.
var IterTrajectoryModes = []struct {
	Name    string
	Channel WeightChannel
	SkipTol float64 // negative: delta skip disabled
}{
	{"full", ChannelRate, -1},
	{"delta-exact", ChannelRate, 0},
	{"delta-tol1e-5", ChannelRate, 1e-5},
	{"drained-delta-exact", ChannelClicks, 0},
}
