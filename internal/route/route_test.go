package route

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/partition"
	"simrankpp/internal/serve"
)

// The fleet fixture mirrors internal/dist's: a deterministic 4-cluster
// graph whose per-cluster weights derive from seeds[c], so bumping one
// seed produces a *different generation* — different scores, different
// graph fingerprint — of the same node universe. Every node is interned
// up front so ids and the shard route map stay stable across
// generations, which is what lets a gateway's ShardRouter opened from
// one generation keep routing during a rollout to the next.

func fleetGraph(t *testing.T, seeds [4]int) *clickgraph.Graph {
	t.Helper()
	b := clickgraph.NewBuilder()
	for c := 0; c < 4; c++ {
		for q := 0; q < 10; q++ {
			b.AddQuery(fmt.Sprintf("c%d-q%d", c, q))
		}
		for a := 0; a < 8; a++ {
			b.AddAd(fmt.Sprintf("c%d-a%d", c, a))
		}
	}
	for c := 0; c < 4; c++ {
		for q := 0; q < 10; q++ {
			for a := 0; a < 8; a++ {
				if q%2 != a%2 {
					continue
				}
				clicks := int64((q*7+a*3+seeds[c])%9 + 1)
				err := b.AddEdge(fmt.Sprintf("c%d-q%d", c, q), fmt.Sprintf("c%d-a%d", c, a),
					clickgraph.EdgeWeights{
						Impressions:       clicks * 3,
						Clicks:            clicks,
						ExpectedClickRate: float64((q*5+a*11+seeds[c])%100) / 100,
					})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Build()
}

func fleetCfg() core.Config {
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.Channel = core.ChannelClicks
	cfg.Iterations = 40
	cfg.Tolerance = 1e-10
	cfg.PruneEpsilon = 1e-8
	return cfg
}

// buildGeneration runs the graph sharded (8-shard component plan) and
// returns the loaded snapshot.
func buildGeneration(t *testing.T, seeds [4]int) *serve.Snapshot {
	t.Helper()
	g := fleetGraph(t, seeds)
	plan := partition.ComponentPlan(g)
	res, err := core.RunSharded(g, fleetCfg(), plan, core.ShardOptions{Workers: 3, RetainShardScores: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serve.WriteSnapshot(&buf, res); err != nil {
		t.Fatal(err)
	}
	snap, err := serve.NewSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// replica is one backend simrankd stand-in: a real serve.Server over a
// snapshot, running in-process.
type replica struct {
	srv *serve.Server
	ts  *httptest.Server
}

func startReplica(t *testing.T, snap *serve.Snapshot, genID uint64) *replica {
	t.Helper()
	return startWrappedReplica(t, snap, genID, nil)
}

// startWrappedReplica lets a test interpose middleware (hit counters)
// between the gateway and the replica's real handler.
func startWrappedReplica(t *testing.T, snap *serve.Snapshot, genID uint64, wrap func(http.Handler) http.Handler) *replica {
	t.Helper()
	srv := serve.NewServer(snap, serve.DefaultServerConfig())
	srv.SetGenerationID(genID)
	h := http.Handler(srv.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return &replica{srv: srv, ts: ts}
}

// newGateway builds a gateway over the replicas and primes it with one
// probe sweep.
func newGateway(t *testing.T, opt Options, reps ...*replica) *Gateway {
	t.Helper()
	for _, r := range reps {
		opt.Backends = append(opt.Backends, BackendSpec{URL: r.ts.URL})
	}
	gw, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	gw.ProbeAll(context.Background())
	return gw
}

// get issues one request against a handler and returns code, header, body.
func get(t *testing.T, h http.Handler, url string) (int, http.Header, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes()
}
