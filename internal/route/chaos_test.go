package route

import (
	"bytes"
	"context"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"simrankpp/internal/faultfs"
)

// The chaos suite drives the gateway through the failure modes the
// tentpole promises to survive, over internal/faultfs's fault-injecting
// HTTP transport: replicas killed mid-request, mixed-generation fleets
// mid-rollout, fully dead fleets, and stragglers. Each test probes the
// healthy fleet first, then injects — probes share the faulted
// transport, so injecting first would (correctly, but unhelpfully) mark
// the replica down before the read path ever saw the fault.
//
// CI runs these with -race -count=2 (see .github/workflows/ci.yml).

func hostOf(t *testing.T, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// setPrimary pins the candidate rotation so the next read's first
// choice is backends[i] — chaos tests aim faults at a known primary.
func setPrimary(gw *Gateway, i int) {
	gw.mu.Lock()
	gw.rr = i
	gw.mu.Unlock()
}

func chaosLogf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

// TestChaosReplicaKilledMidRequestFailover pins the headline failover
// guarantee: a replica whose connection dies mid-response costs a
// retry, not an error — and the answer the client gets is byte-identical
// to what the surviving replica serves directly.
func TestChaosReplicaKilledMidRequestFailover(t *testing.T) {
	snap := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snap.Close()
	r0 := startReplica(t, snap, 1)
	r1 := startReplica(t, snap, 1)
	inj := faultfs.NewHTTPInjector()
	gw := newGateway(t, Options{
		Router:      snap,
		Transport:   inj.Transport(nil),
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Logf:        chaosLogf(t),
	}, r0, r1)

	const u = "/rewrite?q=c0-q0&top=3"
	wantCode, wantBody := directGet(t, r1.ts.URL+u)
	if wantCode != http.StatusOK {
		t.Fatalf("direct read = %d: %s", wantCode, wantBody)
	}

	// Kill replica 0 mid-transfer: every response body from it now cuts
	// off after 10 bytes with io.ErrUnexpectedEOF.
	inj.TruncateBody(hostOf(t, r0.ts.URL), 10)
	setPrimary(gw, 0)

	code, _, body := get(t, gw.Handler(), u)
	if code != http.StatusOK {
		t.Fatalf("read during mid-request kill = %d: %s", code, body)
	}
	if !bytes.Equal(body, wantBody) {
		t.Errorf("failover answer differs from surviving replica's:\n got %q\nwant %q", body, wantBody)
	}
	if gw.retries.Load() == 0 {
		t.Error("failover happened without a counted retry")
	}
	if gw.failovers.Load() == 0 {
		t.Error("failover not counted")
	}
}

// TestChaosMixedGenerationNeverMixes pins generation consistency
// through a rollout: with the fleet split across two snapshot
// generations, every answer the gateway emits is byte-identical to
// exactly one generation's direct answer — never a blend — and reads
// only move to the new generation once a quorum serves it.
func TestChaosMixedGenerationNeverMixes(t *testing.T) {
	snapA := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snapA.Close()
	snapB := buildGeneration(t, [4]int{3, 0, 0, 0})
	defer snapB.Close()
	fpA, fpB := snapA.Meta().Fingerprint, snapB.Meta().Fingerprint
	if fpA == fpB {
		t.Fatal("fixture generations share a fingerprint")
	}

	reps := []*replica{
		startReplica(t, snapA, 1), startReplica(t, snapA, 1), startReplica(t, snapA, 1),
	}
	// Reference replicas outside the fleet give the per-generation golden
	// bytes.
	const u = "/rewrite?q=c0-q2&top=4"
	_, goldenA := directGet(t, startReplica(t, snapA, 1).ts.URL+u)
	_, goldenB := directGet(t, startReplica(t, snapB, 2).ts.URL+u)
	if bytes.Equal(goldenA, goldenB) {
		t.Fatal("fixture generations answer identically; the test can't detect mixing")
	}

	inj := faultfs.NewHTTPInjector()
	gw := newGateway(t, Options{
		Router:    snapA,
		Transport: inj.Transport(nil),
		Quorum:    0.51, // need 2 of 3
		Logf:      chaosLogf(t),
	}, reps...)
	h := gw.Handler()

	hammer := func(phase, wantFP string, want []byte) {
		t.Helper()
		for i := 0; i < 12; i++ {
			code, hdr, body := get(t, h, u)
			if code != http.StatusOK {
				t.Fatalf("%s: read = %d: %s", phase, code, body)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("%s: answer from wrong generation:\n got %q\nwant %q", phase, body, want)
			}
			if g := hdr.Get("Simrank-Generation"); g != wantFP {
				t.Fatalf("%s: stamped generation %q, want %q", phase, g, wantFP)
			}
		}
	}

	// Whole fleet on A.
	hammer("uniform fleet", fpA, goldenA)

	// Rollout starts: replica 0 swaps to generation B — below quorum, so
	// the pin holds and replica 0 simply stops receiving reads.
	reps[0].srv.Swap(snapB)
	reps[0].srv.SetGenerationID(2)
	gw.ProbeAll(context.Background())
	if st := gw.rolloutStatus(); st.Pinned != fpA || st.Pending != fpB {
		t.Fatalf("after 1/3 rollout: %+v, want pinned A pending B", st)
	}
	hammer("1/3 rolled out", fpA, goldenA)

	// Quorum: replica 1 follows; reads cut over atomically.
	reps[1].srv.Swap(snapB)
	reps[1].srv.SetGenerationID(2)
	gw.ProbeAll(context.Background())
	if st := gw.rolloutStatus(); st.Pinned != fpB || st.Cutovers != 1 {
		t.Fatalf("after 2/3 rollout: %+v, want pinned B after 1 cutover", st)
	}
	hammer("2/3 rolled out", fpB, goldenB)

	// Concurrent finale: hammer from several goroutines while the last
	// replica swaps under a live prober. Every single answer must be
	// byte-identical to one generation's golden — a blended or torn
	// answer fails immediately.
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	gw.opt.ProbeInterval = 10 * time.Millisecond
	probeDone := make(chan struct{})
	go func() {
		gw.Run(probeCtx)
		close(probeDone)
	}()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				code, _, body := get(t, h, u)
				if code != http.StatusOK {
					errs <- "non-200 during rollout"
					return
				}
				if !bytes.Equal(body, goldenA) && !bytes.Equal(body, goldenB) {
					errs <- "answer matches neither generation: " + string(body)
					return
				}
			}
		}()
	}
	time.Sleep(15 * time.Millisecond)
	reps[2].srv.Swap(snapB)
	reps[2].srv.SetGenerationID(2)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// A probe in flight at cancellation classifies backends as
	// unreachable (its context is dead); wait the prober out, then take
	// one clean sweep before the final assertion.
	stopProbes()
	<-probeDone

	gw.ProbeAll(context.Background())
	hammer("fully rolled out", fpB, goldenB)
}

// TestChaosAllReplicasDead503 pins graceful degradation: with every
// replica gone the gateway answers 503 with a Retry-After hint, fast —
// it does not hang clients on a fleet that cannot answer.
func TestChaosAllReplicasDead503(t *testing.T) {
	snap := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snap.Close()
	r0 := startReplica(t, snap, 1)
	r1 := startReplica(t, snap, 1)
	inj := faultfs.NewHTTPInjector()
	gw := newGateway(t, Options{
		Transport:         inj.Transport(nil),
		BackoffBase:       time.Millisecond,
		BackoffMax:        4 * time.Millisecond,
		MaxAttempts:       2,
		RetryAfterSeconds: 2,
		Logf:              chaosLogf(t),
	}, r0, r1)

	inj.Drop("", -1) // every request to every host: connection refused

	// Phase 1: the fleet just died; probes haven't noticed. All attempts
	// fail over and exhaust — 503 + Retry-After, quickly.
	start := time.Now()
	code, hdr, _ := get(t, gw.Handler(), "/rewrite?q=c0-q0")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("all-dead read = %d, want 503", code)
	}
	if hdr.Get("Retry-After") != "2" {
		t.Errorf("Retry-After = %q, want %q", hdr.Get("Retry-After"), "2")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("all-dead read took %v; should fail fast", elapsed)
	}

	// Phase 2: probes catch up; no candidates at all, same contract, and
	// the gateway's own /readyz goes unready.
	gw.ProbeAll(context.Background())
	code, hdr, _ = get(t, gw.Handler(), "/rewrite?q=c0-q0")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("post-probe all-dead read = %d (Retry-After %q), want 503 with hint",
			code, hdr.Get("Retry-After"))
	}
	if gw.noReplica.Load() == 0 {
		t.Error("no-replica path not counted")
	}
	code, _, _ = get(t, gw.Handler(), "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("gateway /readyz = %d with fleet dead, want 503", code)
	}

	// Recovery: faults clear, the next probe sweep restores service.
	inj.Reset()
	gw.ProbeAll(context.Background())
	if code, _, body := get(t, gw.Handler(), "/rewrite?q=c0-q0"); code != http.StatusOK {
		t.Fatalf("post-recovery read = %d: %s", code, body)
	}
}

// primeHedge arms the gateway's latency tracker with fast completed
// reads so a subsequent straggler triggers the hedge path.
func primeHedge(t *testing.T, gw *Gateway, u string) {
	t.Helper()
	for i := 0; i < 5; i++ {
		if code, _, body := get(t, gw.Handler(), u); code != http.StatusOK {
			t.Fatalf("priming read = %d: %s", code, body)
		}
	}
	if _, ok := gw.lat.Delay(); !ok {
		t.Fatal("latency tracker still unarmed after priming")
	}
}

// TestChaosHedgedReadUnderStraggler pins tail tolerance: with one
// replica straggling far past the fleet's latency percentile, the read
// is hedged to the healthy replica and completes well under the
// straggler's latency.
func TestChaosHedgedReadUnderStraggler(t *testing.T) {
	snap := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snap.Close()
	r0 := startReplica(t, snap, 1)
	r1 := startReplica(t, snap, 1)
	inj := faultfs.NewHTTPInjector()
	gw := newGateway(t, Options{
		Transport:     inj.Transport(nil),
		HedgeQuantile: 0.5,
		HedgeAfter:    20 * time.Millisecond,
		Logf:          chaosLogf(t),
	}, r0, r1)

	const u = "/rewrite?q=c1-q3&top=3"
	_, golden := directGet(t, r1.ts.URL+u)
	primeHedge(t, gw, u)

	const straggle = 2 * time.Second
	inj.SetLatency(hostOf(t, r0.ts.URL), straggle)
	setPrimary(gw, 0)

	start := time.Now()
	code, _, body := get(t, gw.Handler(), u)
	elapsed := time.Since(start)
	if code != http.StatusOK || !bytes.Equal(body, golden) {
		t.Fatalf("hedged read = %d %q, want 200 golden", code, body)
	}
	if elapsed >= straggle {
		t.Errorf("read took %v, not hedged under the %v straggler", elapsed, straggle)
	}
	if gw.hedges.Load() == 0 {
		t.Error("no hedge counted")
	}
}

// TestChaosReplicaDiesDuringHedgedRead pins the satellite's nastiest
// interleaving: the primary replica straggles, a hedge is launched, and
// then the primary dies mid-response — the hedge's answer must come
// back golden, and the sequence must be clean under -race -count=2.
func TestChaosReplicaDiesDuringHedgedRead(t *testing.T) {
	snap := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snap.Close()
	r0 := startReplica(t, snap, 1)
	r1 := startReplica(t, snap, 1)
	inj := faultfs.NewHTTPInjector()
	gw := newGateway(t, Options{
		Transport:     inj.Transport(nil),
		HedgeQuantile: 0.5,
		HedgeAfter:    20 * time.Millisecond,
		BackoffBase:   time.Millisecond,
		BackoffMax:    4 * time.Millisecond,
		Logf:          chaosLogf(t),
	}, r0, r1)

	const u = "/similar?q=c2-q5&top=3"
	_, golden := directGet(t, r1.ts.URL+u)
	primeHedge(t, gw, u)

	// The primary straggles past the hedge trigger, then its response is
	// cut off mid-body: the read's outcome rides entirely on the hedge.
	host0 := hostOf(t, r0.ts.URL)
	inj.SetLatency(host0, 400*time.Millisecond)
	inj.TruncateBody(host0, 5)
	setPrimary(gw, 0)

	code, _, body := get(t, gw.Handler(), u)
	if code != http.StatusOK || !bytes.Equal(body, golden) {
		t.Fatalf("read = %d %q, want 200 golden", code, body)
	}
	if gw.hedges.Load() == 0 {
		t.Error("no hedge counted")
	}

	// And the fast-death variant: the primary drops instantly, before
	// the hedge timer — the hedge fires immediately instead of waiting.
	inj.Reset()
	inj.Drop(host0, 1)
	setPrimary(gw, 0)
	hedgesBefore := gw.hedges.Load()
	code, _, body = get(t, gw.Handler(), u)
	if code != http.StatusOK || !bytes.Equal(body, golden) {
		t.Fatalf("fast-death read = %d %q, want 200 golden", code, body)
	}
	if gw.hedges.Load() == hedgesBefore && gw.retries.Load() == 0 {
		t.Error("fast death neither hedged nor retried")
	}
	if gw.failovers.Load() == 0 {
		t.Error("failover not counted")
	}
}
