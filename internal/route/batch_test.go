package route

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"simrankpp/internal/serve"
)

// postBatch issues one POST /batch against a handler.
func postBatch(t *testing.T, h http.Handler, body string) (int, http.Header, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes()
}

// TestGatewayBatchRelay pins the /batch relay: queries spanning several
// shards go out as shard-affine sub-batches and merge back in request
// order, byte-identical per item to what the single /rewrite endpoint
// answers through the same gateway, stamped with the pinned generation.
func TestGatewayBatchRelay(t *testing.T) {
	snap := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snap.Close()
	r0 := startReplica(t, snap, 1)
	r1 := startReplica(t, snap, 1)
	gw := newGateway(t, Options{Router: snap}, r0, r1)
	h := gw.Handler()

	// Queries from three different clusters (different shards) plus an
	// unknown one mid-batch.
	queries := []string{"c0-q1", "c2-q3", "nope", "c1-q5", "c0-q1"}
	body, _ := json.Marshal(serve.BatchRequest{Queries: queries, Top: 3})
	code, hdr, raw := postBatch(t, h, string(body))
	if code != http.StatusOK {
		t.Fatalf("gateway /batch = %d: %s", code, raw)
	}
	if hdr.Get("Simrank-Generation") != gw.Pinned() || gw.Pinned() == "" {
		t.Fatalf("Simrank-Generation = %q, pinned %q", hdr.Get("Simrank-Generation"), gw.Pinned())
	}
	var resp serve.BatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("bad batch response %s: %v", raw, err)
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(queries))
	}
	for i, q := range queries {
		if q == "nope" {
			var item serve.BatchItemError
			if err := json.Unmarshal(resp.Results[i], &item); err != nil || item.Status != http.StatusNotFound {
				t.Fatalf("result[%d] = %s, want a 404 item", i, resp.Results[i])
			}
			continue
		}
		sc, _, sb := get(t, h, "/rewrite?q="+url.QueryEscape(q)+"&top=3")
		if sc != http.StatusOK {
			t.Fatalf("gateway /rewrite for %q = %d", q, sc)
		}
		want := bytes.TrimSuffix(sb, []byte("\n"))
		if !bytes.Equal(resp.Results[i], want) {
			t.Fatalf("result[%d] = %s, single endpoint = %s", i, resp.Results[i], want)
		}
	}

	// Method and body validation happen at the gateway, before any relay.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("GET /batch = %d Allow=%q, want 405 POST", rec.Code, rec.Header().Get("Allow"))
	}
	if code, _, _ := postBatch(t, h, `{"queries": []}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", code)
	}
}

// TestGatewayBatchDegradesPerGroup: when the whole fleet is down, the
// batch still answers 200 with per-item 503s only if another group got
// through; with every group failing it is an all-down 503.
func TestGatewayBatchAllDown(t *testing.T) {
	snap := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snap.Close()
	rep := startReplica(t, snap, 1)
	gw := newGateway(t, Options{Router: snap}, rep)
	rep.ts.Close() // fleet dies after the probe sweep pinned the generation

	body, _ := json.Marshal(serve.BatchRequest{Queries: []string{"c0-q1", "c1-q2"}, Top: 2})
	code, _, raw := postBatch(t, gw.Handler(), string(body))
	// The generation is still pinned, so the gateway reports per-item
	// errors rather than dropping the pin.
	if code != http.StatusOK {
		t.Fatalf("batch with dead fleet = %d: %s", code, raw)
	}
	var resp serve.BatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil || len(resp.Results) != 2 {
		t.Fatalf("bad degraded response %s: %v", raw, err)
	}
	for i, r := range resp.Results {
		var item serve.BatchItemError
		if err := json.Unmarshal(r, &item); err != nil || item.Status != http.StatusServiceUnavailable {
			t.Fatalf("result[%d] = %s, want a 503 item", i, r)
		}
	}
}

// TestGatewayStreamsLargeBody pins the streaming satellite: a success
// body larger than the gateway's failover buffer (256 KiB) is relayed
// intact through the spill path instead of being truncated or buffered
// whole.
func TestGatewayStreamsLargeBody(t *testing.T) {
	big := bytes.Repeat([]byte("0123456789abcdef"), (512<<10)/16) // 512 KiB, 2x the buffer
	ts := fakeBackend(t, "g1", func(w http.ResponseWriter, r *http.Request) {
		w.Write(big)
	})
	gw, err := New(Options{Backends: []BackendSpec{{URL: ts.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	gw.ProbeAll(t.Context())

	code, _, body := get(t, gw.Handler(), "/rewrite?q=x")
	if code != http.StatusOK {
		t.Fatalf("GET = %d", code)
	}
	if !bytes.Equal(body, big) {
		t.Fatalf("streamed body corrupted: got %d bytes (want %d), head %q", len(body), len(big), body[:32])
	}
}

// TestGatewayCapsErrorBody: a 5xx backend's body is read only up to
// errBodyCap for the failure detail — the gateway's own 503 carries a
// truncated message, not megabytes of backend spew.
func TestGatewayCapsErrorBody(t *testing.T) {
	spew := strings.Repeat("x", 1<<20)
	ts := fakeBackend(t, "g1", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, spew, http.StatusInternalServerError)
	})
	gw, err := New(Options{
		Backends:    []BackendSpec{{URL: ts.URL}},
		MaxAttempts: 1,
		BackoffBase: time.Millisecond,
		BackoffMax:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.ProbeAll(t.Context())

	code, _, body := get(t, gw.Handler(), "/rewrite?q=x")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("GET = %d, want 503 after exhausted attempts", code)
	}
	if len(body) > errBodyCap {
		t.Fatalf("gateway error body is %d bytes; detail should be capped near %d", len(body), errBodyCap)
	}
	if !bytes.Contains(body, []byte("x")) {
		t.Fatalf("backend detail lost entirely: %q", body)
	}
}
