// Package route is the read-side half of the fleet story: an HTTP
// gateway that spreads /rewrite and /similar traffic across replicated
// simrankd backends so the paper's "millions of users" serving load
// stops terminating at a single daemon.
//
// The gateway holds no scores. It probes each backend's /readyz on a
// jittered interval, classifies it ok / degraded / unready, and routes
// every read to a replica that can actually answer it:
//
//   - Health-aware: healthy replicas are preferred; a degraded replica
//     (some shards quarantined) is used only when no clean replica can
//     answer the query's shard.
//   - Shard-affine: when a ShardRouter (the snapshot's node→shard route
//     map) is configured, each query is mapped to its shard and only
//     replicas holding that shard — per their BackendSpec partition,
//     with hot shards replicated onto several backends — are candidates.
//   - Generation-consistent: every response is pinned to one snapshot
//     generation fingerprint. During a rollout the gateway keeps
//     routing to the old generation until a configurable quorum of
//     replicas report the new one, then cuts over atomically — answers
//     from different generations are never mixed (see prober.go).
//   - Tail-tolerant: failed reads retry on another replica under the
//     shared capped equal-jitter backoff (honoring any Retry-After the
//     backend sent), stragglers are hedged to a second replica past a
//     completed-request latency percentile, and a backend failing
//     consecutively has its circuit opened for a cool-down
//     (internal/hedge carries the shared machinery).
//
// When no replica can answer at all the gateway degrades to 503 +
// Retry-After instead of hanging — the same contract simrankd's own
// overload shedding makes. The chaos suite (chaos_test.go) pins all of
// this under fault injection and -race.
package route

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simrankpp/internal/hedge"
	"simrankpp/internal/serve"
)

// Health classifies one backend replica from its last probe.
type Health int

const (
	// HealthUnknown: never probed.
	HealthUnknown Health = iota
	// HealthUnreachable: the probe could not reach the backend or could
	// not parse its answer.
	HealthUnreachable
	// HealthUnready: the backend answered /readyz with "unready" (503) —
	// up, but with nothing it can serve.
	HealthUnready
	// HealthDegraded: /readyz answered 200 "degraded" — serving, with
	// some shard segments quarantined.
	HealthDegraded
	// HealthOK: /readyz answered 200 "ok".
	HealthOK
)

func (h Health) String() string {
	switch h {
	case HealthUnreachable:
		return "unreachable"
	case HealthUnready:
		return "unready"
	case HealthDegraded:
		return "degraded"
	case HealthOK:
		return "ok"
	}
	return "unknown"
}

// serveable reports whether reads may target a backend in this state at
// all; which reads is the per-shard tiering's business.
func (h Health) serveable() bool { return h == HealthOK || h == HealthDegraded }

// BackendSpec names one replica and, for partitioned fleets, the set of
// shards it holds. A nil Shards means the replica holds the full
// snapshot (the common whole-replica deployment). Hot shards are
// replicated by listing them in several backends' specs.
type BackendSpec struct {
	URL    string
	Shards []int
}

// ParseBackendSpec parses "URL" or "URL#S1,S2,..." (e.g.
// "http://host:8080#0,3,7" for a replica holding shards 0, 3 and 7).
func ParseBackendSpec(s string) (BackendSpec, error) {
	spec := BackendSpec{URL: strings.TrimSuffix(s, "/")}
	if i := strings.IndexByte(s, '#'); i >= 0 {
		spec.URL = strings.TrimSuffix(s[:i], "/")
		for _, part := range strings.Split(s[i+1:], ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			shard, err := strconv.Atoi(part)
			if err != nil || shard < 0 {
				return spec, fmt.Errorf("route: bad shard %q in backend spec %q", part, s)
			}
			spec.Shards = append(spec.Shards, shard)
		}
		if len(spec.Shards) == 0 {
			return spec, fmt.Errorf("route: backend spec %q names no shards after '#'", s)
		}
		sort.Ints(spec.Shards)
	}
	u, err := url.Parse(spec.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return spec, fmt.Errorf("route: backend spec %q is not an absolute URL", s)
	}
	return spec, nil
}

// ParseBackendList parses a comma-separated list of backend specs (the
// -backends flag). Shard lists use '#', so commas inside them are
// disambiguated by requiring every top-level element to start a URL:
// elements that don't contain "://" are folded into the previous
// spec's shard list.
func ParseBackendList(s string) ([]BackendSpec, error) {
	var rawSpecs []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.Contains(part, "://") || len(rawSpecs) == 0 {
			rawSpecs = append(rawSpecs, part)
		} else {
			rawSpecs[len(rawSpecs)-1] += "," + part
		}
	}
	specs := make([]BackendSpec, 0, len(rawSpecs))
	for _, raw := range rawSpecs {
		spec, err := ParseBackendSpec(raw)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("route: no backends in %q", s)
	}
	return specs, nil
}

// ShardRouter maps node names to the snapshot's shard indices — the
// affinity hint shard-partitioned routing needs. *serve.Snapshot
// implements it (the gateway opens the same snapshot the fleet serves,
// reading only header, string table and route map).
type ShardRouter interface {
	PrevQuery(name string) (id, shard int, ok bool)
	PrevAd(name string) (id, shard int, ok bool)
	NumShards() int
}

// segKey identifies one score segment: a (side, shard) pair, matching
// serve.ShardHealth's quarantine granularity.
type segKey struct {
	side  string
	shard int
}

// backendState is one replica's live view: the last probe's
// classification plus the read path's failure accounting.
type backendState struct {
	spec     BackendSpec
	shardSet map[int]bool // nil: holds every shard

	mu          sync.Mutex
	health      Health
	gen         string // generation fingerprint hex; "" unknown
	genID       uint64
	quarantined map[segKey]bool
	lastProbeErr string
	probes      int64
	probeFails  int64

	consecFails  int
	readFails    int64
	breakerUntil time.Time
	breakerOpens int64
}

// observe files one probe result.
func (b *backendState) observe(h Health, gen string, genID uint64, quar []serve.ShardHealth, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probes++
	b.lastProbeErr = ""
	if err != nil {
		b.probeFails++
		b.lastProbeErr = err.Error()
	}
	b.health = h
	if gen != "" {
		b.gen, b.genID = gen, genID
	}
	b.quarantined = nil
	if len(quar) > 0 {
		b.quarantined = make(map[segKey]bool, len(quar))
		for _, q := range quar {
			b.quarantined[segKey{q.Side, q.Shard}] = true
		}
	}
}

// tierFor classifies the backend as a candidate for one read: tier 0
// (healthy), 1 (degraded but the needed segment is clean), 2 (degraded
// with the needed segment quarantined — last resort), or not a
// candidate at all (wrong generation, unready, circuit open, or a
// partitioned replica that does not hold the shard).
func (b *backendState) tierFor(pin, side string, shard int, now time.Time) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.health.serveable() || b.gen != pin {
		return 0, false
	}
	if now.Before(b.breakerUntil) {
		return 0, false
	}
	if shard >= 0 && b.shardSet != nil && !b.shardSet[shard] {
		return 0, false
	}
	if b.health == HealthOK {
		return 0, true
	}
	if shard >= 0 && b.quarantined[segKey{side, shard}] {
		return 2, true
	}
	return 1, true
}

// Options tunes the gateway. Zero values select the defaults noted on
// each field.
type Options struct {
	// Backends is the replica fleet (required, at least one).
	Backends []BackendSpec
	// Router, when non-nil, enables shard-affine routing: queries map to
	// shards through it and partitioned replicas only receive reads for
	// shards they hold.
	Router ShardRouter
	// ProbeInterval is the /readyz probing cadence, equal-jittered into
	// [½, 1]× so a gateway fleet's probes don't align (default 2s);
	// ProbeTimeout bounds one probe (default 1s).
	ProbeInterval, ProbeTimeout time.Duration
	// Quorum is the fraction of configured replicas that must report a
	// new generation before the gateway cuts reads over to it (default
	// 0.51 — a strict majority; see prober.go for the state machine).
	Quorum float64
	// MaxAttempts bounds read dispatch rounds across replicas (default
	// 3); a round may involve two replicas when hedged.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the capped equal-jitter backoff
	// between a read's dispatch rounds (defaults 25ms / 1s). The wait is
	// floored at any Retry-After the failed backend sent.
	BackoffBase, BackoffMax time.Duration
	// HedgeQuantile picks the completed-read latency percentile past
	// which an outstanding read is hedged to a second replica (default
	// 0.95); HedgeAfter floors the hedge delay (default 100ms). Hedging
	// arms only after 3 completed reads.
	HedgeQuantile float64
	HedgeAfter    time.Duration
	// BreakerFails is how many consecutive read failures open a
	// backend's circuit (default 3); BreakerCooldown is how long the
	// circuit stays open before a half-open trial (default 5s).
	BreakerFails    int
	BreakerCooldown time.Duration
	// RequestTimeout bounds one proxied read end to end, hedges
	// included (default 5s).
	RequestTimeout time.Duration
	// RetryAfterSeconds is the Retry-After hint on gateway-emitted 503s
	// (no serveable replica / all attempts failed); default 1.
	RetryAfterSeconds int
	// Transport overrides the HTTP transport for probes and reads (the
	// chaos suite's fault-injection seam); nil uses
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Jitter overrides the jitter source for backoff and probe
	// intervals, returning values in [0, 1); nil uses math/rand.
	Jitter func() float64
	// Logf receives progress lines (probe transitions, cutovers,
	// breaker trips); nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 2 * time.Second
	}
	if out.ProbeTimeout <= 0 {
		out.ProbeTimeout = time.Second
	}
	if out.Quorum <= 0 || out.Quorum > 1 {
		out.Quorum = 0.51
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 3
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 25 * time.Millisecond
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = time.Second
	}
	if out.HedgeQuantile <= 0 || out.HedgeQuantile >= 1 {
		out.HedgeQuantile = 0.95
	}
	if out.HedgeAfter <= 0 {
		out.HedgeAfter = 100 * time.Millisecond
	}
	if out.BreakerFails <= 0 {
		out.BreakerFails = 3
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = 5 * time.Second
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = 5 * time.Second
	}
	if out.RetryAfterSeconds <= 0 {
		out.RetryAfterSeconds = 1
	}
	if out.Jitter == nil {
		out.Jitter = rand.Float64
	}
	return out
}

// Gateway fans reads across the replica fleet.
type Gateway struct {
	opt      Options
	client   *http.Client
	backends []*backendState
	backoff  hedge.Backoff
	lat      *hedge.Tracker
	start    time.Time

	// mu guards the rollout state and the routing rotation.
	mu      sync.Mutex
	pinned  string // generation fingerprint reads are pinned to
	pending string // a newer generation observed below quorum
	rr      int
	cutovers atomic.Int64
	forced   atomic.Int64

	requests  atomic.Int64
	proxied   atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	failovers atomic.Int64
	noReplica atomic.Int64
}

// New builds a gateway over the configured fleet. It does not probe:
// call ProbeAll (or run Run in the background) before serving, or every
// read answers 503 for want of a pinned generation.
func New(opt Options) (*Gateway, error) {
	if len(opt.Backends) == 0 {
		return nil, fmt.Errorf("route: at least one backend is required")
	}
	opt = (&opt).withDefaults()
	gw := &Gateway{
		opt:     opt,
		client:  &http.Client{Transport: opt.Transport},
		backoff: hedge.Backoff{Base: opt.BackoffBase, Max: opt.BackoffMax, Jitter: opt.Jitter},
		lat:     &hedge.Tracker{Quantile: opt.HedgeQuantile, Floor: opt.HedgeAfter},
		start:   time.Now(),
	}
	for _, spec := range opt.Backends {
		b := &backendState{spec: spec}
		if len(spec.Shards) > 0 {
			b.shardSet = make(map[int]bool, len(spec.Shards))
			for _, s := range spec.Shards {
				b.shardSet[s] = true
			}
		}
		gw.backends = append(gw.backends, b)
	}
	return gw, nil
}

func (gw *Gateway) logf(format string, args ...any) {
	if gw.opt.Logf != nil {
		gw.opt.Logf(format, args...)
	}
}

// Pinned reports the generation fingerprint reads are currently pinned
// to ("" before the first successful probe sweep).
func (gw *Gateway) Pinned() string {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return gw.pinned
}
