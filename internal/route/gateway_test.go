package route

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseBackendSpec(t *testing.T) {
	cases := []struct {
		in     string
		want   BackendSpec
		wantOK bool
	}{
		{"http://a:8080", BackendSpec{URL: "http://a:8080"}, true},
		{"http://a:8080/", BackendSpec{URL: "http://a:8080"}, true},
		{"http://a:8080#3", BackendSpec{URL: "http://a:8080", Shards: []int{3}}, true},
		{"http://a:8080#2,0,5", BackendSpec{URL: "http://a:8080", Shards: []int{0, 2, 5}}, true},
		{"http://a:8080#", BackendSpec{}, false},
		{"http://a:8080#x", BackendSpec{}, false},
		{"http://a:8080#-1", BackendSpec{}, false},
		{"not a url", BackendSpec{}, false},
		{"/relative/only", BackendSpec{}, false},
	}
	for _, c := range cases {
		got, err := ParseBackendSpec(c.in)
		if (err == nil) != c.wantOK {
			t.Errorf("ParseBackendSpec(%q) err = %v, want ok=%v", c.in, err, c.wantOK)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseBackendSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseBackendList(t *testing.T) {
	// Shard lists use commas too, so list parsing folds non-URL elements
	// into the preceding spec.
	got, err := ParseBackendList("http://a:1#0,2, http://b:2 ,http://c:3#1")
	if err != nil {
		t.Fatal(err)
	}
	want := []BackendSpec{
		{URL: "http://a:1", Shards: []int{0, 2}},
		{URL: "http://b:2"},
		{URL: "http://c:3", Shards: []int{1}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseBackendList = %+v, want %+v", got, want)
	}
	if _, err := ParseBackendList(" , "); err == nil {
		t.Error("empty list parsed without error")
	}
}

// TestGatewayProxiesByteIdentical pins the proxy contract: whatever a
// backend would have answered directly — success or client error — the
// gateway relays byte for byte, stamped with the pinned generation.
func TestGatewayProxiesByteIdentical(t *testing.T) {
	snap := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snap.Close()
	r0 := startReplica(t, snap, 1)
	r1 := startReplica(t, snap, 1)
	gw := newGateway(t, Options{Router: snap}, r0, r1)
	h := gw.Handler()

	if pin := gw.Pinned(); pin != snap.Meta().Fingerprint {
		t.Fatalf("pinned %q, want snapshot fingerprint %q", pin, snap.Meta().Fingerprint)
	}
	urls := []string{
		"/rewrite?q=c0-q0&top=3",
		"/rewrite?q=c2-q7",
		"/similar?q=c1-q4&top=2",
		"/similar?ad=c3-a2&top=4",
		"/rewrite?q=no-such-query",
		"/rewrite", // missing q — backend's client error, relayed
	}
	for _, u := range urls {
		wantCode, wantBody := directGet(t, r0.ts.URL+u)
		code, hdr, body := get(t, h, u)
		if code != wantCode || !bytes.Equal(body, wantBody) {
			t.Errorf("GET %s via gateway = %d %q, direct = %d %q", u, code, body, wantCode, wantBody)
		}
		if g := hdr.Get("Simrank-Generation"); g != snap.Meta().Fingerprint {
			t.Errorf("GET %s Simrank-Generation = %q, want %q", u, g, snap.Meta().Fingerprint)
		}
	}
	if got := gw.proxied.Load(); got != int64(len(urls)) {
		t.Errorf("proxied = %d, want %d", got, len(urls))
	}
}

func directGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestShardAffinity pins partitioned routing: with backends declaring
// disjoint shard sets, every read lands on a replica that holds the
// query's shard.
func TestShardAffinity(t *testing.T) {
	snap := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snap.Close()
	_, shard, ok := snap.PrevQuery("c0-q0")
	if !ok {
		t.Fatal("fixture query missing from route map")
	}

	// Two counting replicas over the same snapshot: one holding only the
	// probe query's shard, the other holding everything else.
	var hits [2]atomic.Int64
	var others []int
	for s := 0; s < snap.NumShards(); s++ {
		if s != shard {
			others = append(others, s)
		}
	}
	var specs []BackendSpec
	for i := 0; i < 2; i++ {
		i := i
		rep := startWrappedReplica(t, snap, 1, func(inner http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/rewrite" || r.URL.Path == "/similar" {
					hits[i].Add(1)
				}
				inner.ServeHTTP(w, r)
			})
		})
		spec := BackendSpec{URL: rep.ts.URL, Shards: others}
		if i == 0 {
			spec.Shards = []int{shard}
		}
		specs = append(specs, spec)
	}
	gw, err := New(Options{Backends: specs, Router: snap})
	if err != nil {
		t.Fatal(err)
	}
	gw.ProbeAll(t.Context())
	h := gw.Handler()

	for i := 0; i < 5; i++ {
		if code, _, body := get(t, h, "/rewrite?q=c0-q0&top=2"); code != http.StatusOK {
			t.Fatalf("GET /rewrite = %d: %s", code, body)
		}
	}
	if got := hits[0].Load(); got != 5 {
		t.Errorf("shard-holding replica served %d reads, want 5", got)
	}
	if got := hits[1].Load(); got != 0 {
		t.Errorf("non-holding replica served %d reads, want 0", got)
	}

	// A query from another cluster routes to the other replica.
	hits[0].Store(0)
	if code, _, body := get(t, h, "/rewrite?q=c2-q3&top=2"); code != http.StatusOK {
		t.Fatalf("GET /rewrite = %d: %s", code, body)
	}
	if hits[0].Load() != 0 || hits[1].Load() == 0 {
		t.Errorf("other-shard read hit replica0=%d replica1=%d, want 0 and >0", hits[0].Load(), hits[1].Load())
	}
}

// fakeBackend is a scriptable replica for failure-path tests: /readyz
// reports a fixed generation, reads run the given handler.
func fakeBackend(t *testing.T, gen string, read http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":     "ok",
			"generation": map[string]any{"id": 1, "fingerprint": gen},
		})
	})
	mux.HandleFunc("/rewrite", read)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestRetryAfterFloorsBackoff pins satellite #2 on the gateway side: a
// backend's Retry-After on 503 floors the retry backoff even when the
// configured schedule is far shorter.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	var calls atomic.Int64
	ts := fakeBackend(t, "g1", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "recovered")
	})
	gw, err := New(Options{
		Backends:    []BackendSpec{{URL: ts.URL}},
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		// One failure must not open the breaker mid-test.
		BreakerFails: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.ProbeAll(t.Context())

	start := time.Now()
	code, _, body := get(t, gw.Handler(), "/rewrite?q=x")
	elapsed := time.Since(start)
	if code != http.StatusOK || string(body) != "recovered" {
		t.Fatalf("GET = %d %q, want 200 \"recovered\"", code, body)
	}
	if elapsed < time.Second {
		t.Errorf("read completed in %v; Retry-After: 1 should have floored the backoff at 1s", elapsed)
	}
	if gw.retries.Load() == 0 {
		t.Error("no retries counted")
	}
}

// TestBreakerOpensAndRecovers pins the circuit breaker: consecutive
// failures remove a replica from candidacy for the cool-down, after
// which it is admitted again (half-open) and a success closes the
// circuit.
func TestBreakerOpensAndRecovers(t *testing.T) {
	snap := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snap.Close()
	rep := startReplica(t, snap, 1)
	gw := newGateway(t, Options{BreakerFails: 3, BreakerCooldown: 50 * time.Millisecond}, rep)
	b := gw.backends[0]
	pin := gw.Pinned()

	for i := 0; i < 3; i++ {
		if _, ok := b.tierFor(pin, "query", -1, time.Now()); !ok {
			t.Fatalf("replica not a candidate before failure %d", i)
		}
		gw.markRead(b, false)
	}
	if _, ok := b.tierFor(pin, "query", -1, time.Now()); ok {
		t.Fatal("circuit did not open after 3 consecutive failures")
	}
	b.mu.Lock()
	opens := b.breakerOpens
	b.mu.Unlock()
	if opens != 1 {
		t.Fatalf("breakerOpens = %d, want 1", opens)
	}

	time.Sleep(60 * time.Millisecond)
	if _, ok := b.tierFor(pin, "query", -1, time.Now()); !ok {
		t.Fatal("circuit still open after cooldown (no half-open trial)")
	}
	gw.markRead(b, true)
	gw.markRead(b, false)
	gw.markRead(b, false)
	if _, ok := b.tierFor(pin, "query", -1, time.Now()); !ok {
		t.Fatal("two failures after a success re-opened the circuit early")
	}
}

// TestUnpinnedGatewayDegrades pins the cold-start contract: before any
// probe has pinned a generation, reads degrade to 503 + Retry-After
// rather than guessing a backend.
func TestUnpinnedGatewayDegrades(t *testing.T) {
	gw, err := New(Options{Backends: []BackendSpec{{URL: "http://127.0.0.1:1"}}})
	if err != nil {
		t.Fatal(err)
	}
	code, hdr, _ := get(t, gw.Handler(), "/rewrite?q=x")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unpinned read = %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if gw.noReplica.Load() != 1 {
		t.Errorf("noReplica = %d, want 1", gw.noReplica.Load())
	}
}

// TestGatewayStatusEndpoints sanity-checks the gateway's own /readyz
// and /stats documents.
func TestGatewayStatusEndpoints(t *testing.T) {
	snap := buildGeneration(t, [4]int{0, 0, 0, 0})
	defer snap.Close()
	r0 := startReplica(t, snap, 1)
	gw := newGateway(t, Options{}, r0)
	h := gw.Handler()

	code, _, body := get(t, h, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz = %d: %s", code, body)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ok" || ready.Rollout.Pinned != snap.Meta().Fingerprint {
		t.Errorf("/readyz = %+v, want ok pinned to snapshot generation", ready)
	}
	if len(ready.Backends) != 1 || ready.Backends[0].Health != "ok" {
		t.Errorf("/readyz backends = %+v", ready.Backends)
	}

	if code, _, body := get(t, h, "/rewrite?q=c0-q0"); code != http.StatusOK {
		t.Fatalf("/rewrite = %d: %s", code, body)
	}
	code, _, body = get(t, h, "/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats = %d: %s", code, body)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 1 || stats.Proxied != 1 {
		t.Errorf("/stats requests=%d proxied=%d, want 1/1", stats.Requests, stats.Proxied)
	}
}
