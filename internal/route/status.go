// The gateway's own observability surface: /stats, /readyz, /healthz.
package route

import (
	"encoding/json"
	"net/http"
	"time"
)

// BackendStatus is one replica's probed state as reported by /stats and
// /readyz.
type BackendStatus struct {
	URL          string `json:"url"`
	Shards       []int  `json:"shards,omitempty"` // nil: full replica
	Health       string `json:"health"`
	Generation   string `json:"generation,omitempty"`
	GenerationID uint64 `json:"generation_id,omitempty"`
	Quarantined  int    `json:"quarantined,omitempty"`
	Probes       int64  `json:"probes"`
	ProbeFails   int64  `json:"probe_fails,omitempty"`
	ReadFails    int64  `json:"read_fails,omitempty"`
	BreakerOpen  bool   `json:"breaker_open,omitempty"`
	BreakerOpens int64  `json:"breaker_opens,omitempty"`
	LastProbeErr string `json:"last_probe_error,omitempty"`
}

// RolloutStatus is the generation state machine's position.
type RolloutStatus struct {
	// Pinned is the generation fingerprint reads are pinned to.
	Pinned string `json:"pinned"`
	// Pending is a newer generation seen on some replicas but still
	// below quorum ("" outside a rollout).
	Pending string `json:"pending,omitempty"`
	// QuorumNeed is how many serveable replicas a generation needs to
	// take the pin.
	QuorumNeed int `json:"quorum_need"`
	// Cutovers counts pin moves; Forced counts the subset taken without
	// quorum because the pinned generation had no live replicas.
	Cutovers int64 `json:"cutovers"`
	Forced   int64 `json:"forced,omitempty"`
}

// StatsResponse is the gateway /stats document.
type StatsResponse struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Requests      int64           `json:"requests"`
	Proxied       int64           `json:"proxied"`
	Retries       int64           `json:"retries"`
	Hedges        int64           `json:"hedges"`
	Failovers     int64           `json:"failovers"`
	NoReplica     int64           `json:"no_replica"`
	Rollout       RolloutStatus   `json:"rollout"`
	Backends      []BackendStatus `json:"backends"`
}

// ReadyResponse is the gateway /readyz document: "ok" when every
// configured replica serves the pinned generation cleanly, "degraded"
// (still 200) when at least one replica can answer, "unready" (503)
// when none can.
type ReadyResponse struct {
	Status   string          `json:"status"`
	Rollout  RolloutStatus   `json:"rollout"`
	Backends []BackendStatus `json:"backends"`
}

func (gw *Gateway) backendStatuses() []BackendStatus {
	out := make([]BackendStatus, 0, len(gw.backends))
	now := time.Now()
	for _, b := range gw.backends {
		b.mu.Lock()
		out = append(out, BackendStatus{
			URL:          b.spec.URL,
			Shards:       b.spec.Shards,
			Health:       b.health.String(),
			Generation:   b.gen,
			GenerationID: b.genID,
			Quarantined:  len(b.quarantined),
			Probes:       b.probes,
			ProbeFails:   b.probeFails,
			ReadFails:    b.readFails,
			BreakerOpen:  now.Before(b.breakerUntil),
			BreakerOpens: b.breakerOpens,
			LastProbeErr: b.lastProbeErr,
		})
		b.mu.Unlock()
	}
	return out
}

func (gw *Gateway) rolloutStatus() RolloutStatus {
	gw.mu.Lock()
	pinned, pending := gw.pinned, gw.pending
	gw.mu.Unlock()
	return RolloutStatus{
		Pinned:     pinned,
		Pending:    pending,
		QuorumNeed: gw.quorumNeed(),
		Cutovers:   gw.cutovers.Load(),
		Forced:     gw.forced.Load(),
	}
}

func (gw *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(gw.start).Seconds(),
		Requests:      gw.requests.Load(),
		Proxied:       gw.proxied.Load(),
		Retries:       gw.retries.Load(),
		Hedges:        gw.hedges.Load(),
		Failovers:     gw.failovers.Load(),
		NoReplica:     gw.noReplica.Load(),
		Rollout:       gw.rolloutStatus(),
		Backends:      gw.backendStatuses(),
	})
}

func (gw *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (gw *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rollout := gw.rolloutStatus()
	backends := gw.backendStatuses()
	serveableOnPin, clean := 0, 0
	for _, b := range backends {
		h := b.Health == "ok" || b.Health == "degraded"
		if h && b.Generation == rollout.Pinned && rollout.Pinned != "" {
			serveableOnPin++
			if b.Health == "ok" && !b.BreakerOpen {
				clean++
			}
		}
	}
	resp := ReadyResponse{Rollout: rollout, Backends: backends}
	code := http.StatusOK
	switch {
	case serveableOnPin == 0:
		resp.Status = "unready"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case clean == len(backends):
		resp.Status = "ok"
	default:
		resp.Status = "degraded"
	}
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
