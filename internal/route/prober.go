// Health probing and the generation-rollout state machine.
//
// The gateway's consistency guarantee — no response ever mixes snapshot
// generations, and concurrent clients never see the fleet flap between
// generations mid-rollout — reduces to one rule: reads are pinned to a
// single generation fingerprint, and the pin moves only through the
// two-phase cutover below.
//
// Phase 1 (observe): probes record each replica's generation. A new
// generation appearing on some replicas is merely *pending* — reads keep
// going to the pinned generation's replicas, so a half-rolled-out fleet
// answers uniformly from the old snapshot.
//
// Phase 2 (cutover): once a quorum of replicas report the same new
// generation AND the pinned generation has fallen below quorum, the pin
// moves in one step under the gateway lock. Requiring the old
// generation to drop below quorum makes the transfer unambiguous: two
// generations can't both hold quorum with Quorum > ½, and a replica
// rejoining on the old generation after cutover is simply excluded from
// routing rather than dragging the fleet backwards. The same rule run
// in reverse is a rollback: re-push the old snapshot to a quorum and
// the pin returns. Forced failover is the one exception — if every
// replica on the pinned generation is gone, serving *something*
// consistent beats serving nothing, so the pin jumps to the
// best-represented serveable generation even below quorum.
package route

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"simrankpp/internal/serve"
)

// Run probes the fleet on the configured interval until ctx is
// cancelled. The interval is equal-jittered into [½, 1]× so many
// gateways probing the same fleet don't align into probe storms.
func (gw *Gateway) Run(ctx context.Context) {
	for {
		gw.ProbeAll(ctx)
		iv := gw.opt.ProbeInterval
		wait := iv/2 + time.Duration(gw.opt.Jitter()*float64(iv/2))
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}

// ProbeAll probes every backend once, in parallel, then advances the
// rollout state machine on the fresh classifications.
func (gw *Gateway) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range gw.backends {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			gw.probeOne(ctx, b)
		}(b)
	}
	wg.Wait()
	gw.updateRollout()
}

// probeOne classifies one backend from its /readyz.
func (gw *Gateway) probeOne(ctx context.Context, b *backendState) {
	ctx, cancel := context.WithTimeout(ctx, gw.opt.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.spec.URL+"/readyz", nil)
	if err != nil {
		b.observe(HealthUnreachable, "", 0, nil, err)
		return
	}
	resp, err := gw.client.Do(req)
	if err != nil {
		b.observe(HealthUnreachable, "", 0, nil, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		b.observe(HealthUnreachable, "", 0, nil, err)
		return
	}
	var ready serve.ReadyResponse
	if err := json.Unmarshal(body, &ready); err != nil {
		b.observe(HealthUnreachable, "", 0, nil,
			fmt.Errorf("route: %s /readyz: %w", b.spec.URL, err))
		return
	}
	h := HealthUnready
	switch {
	case resp.StatusCode == http.StatusOK && ready.Status == "ok":
		h = HealthOK
	case resp.StatusCode == http.StatusOK && ready.Status == "degraded":
		h = HealthDegraded
	}
	gen, genID := "", uint64(0)
	if ready.Generation != nil {
		gen, genID = ready.Generation.Fingerprint, ready.Generation.ID
	}
	b.mu.Lock()
	prev := b.health
	b.mu.Unlock()
	if prev != h {
		gw.logf("route: backend %s %s -> %s (generation %s)", b.spec.URL, prev, h, gen)
	}
	b.observe(h, gen, genID, ready.Quarantined, nil)
}

// genTally is one generation's standing in the fleet.
type genTally struct {
	gen   string
	count int    // serveable replicas reporting it
	maxID uint64 // highest journal id seen with it (tiebreak, observability)
}

// quorumNeed is how many serveable replicas a generation needs before
// reads cut over to it: ceil(Quorum × fleet size), at least 1, and never
// more than the fleet (a Quorum of 1.0 on any fleet is "everyone").
func (gw *Gateway) quorumNeed() int {
	total := len(gw.backends)
	need := int(gw.opt.Quorum * float64(total))
	if float64(need) < gw.opt.Quorum*float64(total) {
		need++
	}
	if need < 1 {
		need = 1
	}
	if need > total {
		need = total
	}
	return need
}

// updateRollout advances the two-phase cutover described in the file
// comment. Called after every probe sweep.
func (gw *Gateway) updateRollout() {
	tallies := make(map[string]*genTally)
	for _, b := range gw.backends {
		b.mu.Lock()
		h, gen, genID := b.health, b.gen, b.genID
		b.mu.Unlock()
		if !h.serveable() || gen == "" {
			continue
		}
		t := tallies[gen]
		if t == nil {
			t = &genTally{gen: gen}
			tallies[gen] = t
		}
		t.count++
		if genID > t.maxID {
			t.maxID = genID
		}
	}

	// Rank generations: most replicas first, then newest journal id,
	// then lexical fingerprint for determinism.
	ranked := make([]*genTally, 0, len(tallies))
	for _, t := range tallies {
		ranked = append(ranked, t)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		if ranked[i].maxID != ranked[j].maxID {
			return ranked[i].maxID > ranked[j].maxID
		}
		return ranked[i].gen < ranked[j].gen
	})

	need := gw.quorumNeed()
	gw.mu.Lock()
	defer gw.mu.Unlock()
	pinCount := 0
	if t := tallies[gw.pinned]; t != nil {
		pinCount = t.count
	}
	gw.pending = ""

	if gw.pinned == "" {
		// First pin: take the best-represented generation, quorum or not —
		// there is no old generation to stay consistent with.
		if len(ranked) > 0 {
			gw.pinned = ranked[0].gen
			gw.logf("route: pinned generation %s (id %d, %d/%d replicas)",
				gw.pinned, ranked[0].maxID, ranked[0].count, len(gw.backends))
		}
		return
	}

	// Cutover: a different generation holds quorum and the pinned one
	// has lost it.
	for _, t := range ranked {
		if t.gen == gw.pinned {
			continue
		}
		if t.count >= need && pinCount < need {
			gw.logf("route: cutover %s -> %s (id %d, %d/%d replicas >= quorum %d, old at %d)",
				gw.pinned, t.gen, t.maxID, t.count, len(gw.backends), need, pinCount)
			gw.pinned = t.gen
			gw.cutovers.Add(1)
			return
		}
		if t.count > 0 {
			gw.pending = t.gen
		}
		break // only the best challenger can pend or win
	}

	// Forced failover: nothing serves the pinned generation at all, but
	// some other generation is serveable. Consistency with a generation
	// that no longer exists is worth nothing — move.
	if pinCount == 0 && len(ranked) > 0 && ranked[0].gen != gw.pinned {
		gw.logf("route: forced failover %s -> %s (pinned generation has no live replicas)",
			gw.pinned, ranked[0].gen)
		gw.pinned = ranked[0].gen
		gw.pending = ""
		gw.cutovers.Add(1)
		gw.forced.Add(1)
	}
}
