// The proxied read path: candidate selection, failover with backoff,
// percentile hedging, and the per-backend circuit breaker.
package route

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"simrankpp/internal/hedge"
)

// Handler returns the gateway's HTTP mux: /rewrite and /similar proxied
// to the fleet, /stats and /readyz and /healthz answered locally.
func (gw *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rewrite", gw.handleRead)
	mux.HandleFunc("/similar", gw.handleRead)
	mux.HandleFunc("/stats", gw.handleStats)
	mux.HandleFunc("/healthz", gw.handleHealthz)
	mux.HandleFunc("/readyz", gw.handleReadyz)
	return mux
}

// proxied is one backend answer, relayed to the client byte-identically.
type proxied struct {
	status      int
	contentType string
	body        []byte
}

// errNoReplica means candidate selection came up empty — distinct from
// "candidates existed and all attempts on them failed".
var errNoReplica = errors.New("route: no serveable replica")

// affinity maps the request to its snapshot shard through the route
// map; -1 when no router is configured or the node is unknown (unknown
// nodes route anywhere — every replica answers them with the same
// not-found).
func (gw *Gateway) affinity(r *http.Request) (side string, shard int) {
	q := r.URL.Query()
	if ad := q.Get("ad"); ad != "" {
		if gw.opt.Router == nil {
			return "ad", -1
		}
		if _, s, ok := gw.opt.Router.PrevAd(ad); ok {
			return "ad", s
		}
		return "ad", -1
	}
	side = "query"
	if gw.opt.Router == nil {
		return side, -1
	}
	if _, s, ok := gw.opt.Router.PrevQuery(q.Get("q")); ok {
		return side, s
	}
	return side, -1
}

// candidates returns the replicas eligible for one read, best tier
// first, rotated within each tier so load spreads across equals. The
// returned pin is the generation every candidate serves.
func (gw *Gateway) candidates(side string, shard int) (pin string, order []*backendState) {
	gw.mu.Lock()
	pin = gw.pinned
	rot := gw.rr
	gw.rr++
	gw.mu.Unlock()
	if pin == "" {
		return "", nil
	}
	now := time.Now()
	var tiers [3][]*backendState
	n := len(gw.backends)
	for i := 0; i < n; i++ {
		b := gw.backends[(rot+i)%n]
		if tier, ok := b.tierFor(pin, side, shard, now); ok {
			tiers[tier] = append(tiers[tier], b)
		}
	}
	order = append(order, tiers[0]...)
	order = append(order, tiers[1]...)
	order = append(order, tiers[2]...)
	return pin, order
}

func (gw *Gateway) handleRead(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	side, shard := gw.affinity(r)
	pin, order := gw.candidates(side, shard)
	if len(order) == 0 {
		gw.noReplica.Add(1)
		gw.unavailable(w, "no replica can serve this request")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), gw.opt.RequestTimeout)
	defer cancel()
	resp, err := gw.fetchFailover(ctx, order, r.URL.Path, r.URL.RawQuery)
	if err != nil {
		gw.unavailable(w, err.Error())
		return
	}
	gw.proxied.Add(1)
	h := w.Header()
	if resp.contentType != "" {
		h.Set("Content-Type", resp.contentType)
	}
	// Stamp which generation answered — the consistency guarantee made
	// observable (and assertable by the chaos suite).
	h.Set("Simrank-Generation", pin)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// unavailable is the gateway's degraded contract: 503 + Retry-After,
// mirroring simrankd's own shedding, so clients back off instead of
// hammering a fleet that cannot answer.
func (gw *Gateway) unavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(gw.opt.RetryAfterSeconds))
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// fetchFailover runs dispatch rounds over the candidate list until one
// answers, backing off between rounds under the shared equal-jitter
// schedule floored at any Retry-After a failed backend sent.
func (gw *Gateway) fetchFailover(ctx context.Context, order []*backendState, path, rawQuery string) (proxied, error) {
	tried := make(map[*backendState]bool)
	// pick returns the best untried candidate (skipping exclude), and
	// starts a fresh pass once everyone has been tried — later rounds
	// may succeed on a replica that failed earlier.
	pick := func(exclude *backendState) *backendState {
		for pass := 0; pass < 2; pass++ {
			for _, b := range order {
				if !tried[b] && b != exclude {
					tried[b] = true
					return b
				}
			}
			tried = make(map[*backendState]bool)
		}
		// Only the excluded replica remains: hand it back rather than
		// stall; callers needing a *distinct* replica filter it out.
		if exclude != nil && len(order) > 0 {
			return order[0]
		}
		return nil
	}
	var lastErr error
	failed := false
	for attempt := 1; attempt <= gw.opt.MaxAttempts; attempt++ {
		if attempt > 1 {
			gw.retries.Add(1)
			if err := gw.backoff.Sleep(ctx, attempt-1, hedge.RetryAfterHint(lastErr)); err != nil {
				return proxied{}, fmt.Errorf("route: %w (last error: %v)", err, lastErr)
			}
		}
		resp, err := gw.fetchHedged(ctx, pick, path, rawQuery)
		if err == nil {
			if failed {
				gw.failovers.Add(1)
			}
			return resp, nil
		}
		failed = true
		lastErr = err
		if ctx.Err() != nil {
			return proxied{}, fmt.Errorf("route: %w (last error: %v)", ctx.Err(), lastErr)
		}
	}
	return proxied{}, fmt.Errorf("route: all %d attempts failed: %w", gw.opt.MaxAttempts, lastErr)
}

// fetchHedged sends the read to one replica and, if no answer lands
// within the completed-read latency percentile, mirrors it to a second
// replica and takes whichever answers first — the tail-at-scale hedge,
// same shape as internal/dist's write-side hedging.
func (gw *Gateway) fetchHedged(ctx context.Context, pick func(exclude *backendState) *backendState, path, rawQuery string) (proxied, error) {
	primary := pick(nil)
	if primary == nil {
		return proxied{}, errNoReplica
	}
	type result struct {
		resp proxied
		err  error
		b    *backendState
	}
	results := make(chan result, 2)
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	launch := func(b *backendState) {
		go func() {
			started := time.Now()
			resp, err := gw.fetchOne(hctx, b, path, rawQuery)
			if err == nil {
				gw.lat.Record(time.Since(started))
			}
			gw.markRead(b, err == nil)
			results <- result{resp, err, b}
		}()
	}
	launch(primary)
	outstanding := 1
	hedged := false

	var hedgeCh <-chan time.Time
	if delay, ok := gw.lat.Delay(); ok {
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeCh = t.C
	}
	var firstErr error
	for {
		select {
		case <-hctx.Done():
			return proxied{}, hctx.Err()
		case <-hedgeCh:
			hedgeCh = nil
			if secondary := pick(primary); secondary != nil && secondary != primary {
				gw.hedges.Add(1)
				hedged = true
				launch(secondary)
				outstanding++
			}
		case res := <-results:
			if res.err == nil {
				if hedged && res.b != primary {
					gw.failovers.Add(1)
				}
				return res.resp, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			outstanding--
			if outstanding == 0 {
				// Primary failed fast and no hedge is pending: fire the
				// hedge immediately rather than waiting out the timer.
				if hedgeCh != nil {
					hedgeCh = nil
					if secondary := pick(primary); secondary != nil && secondary != primary {
						gw.hedges.Add(1)
						hedged = true
						launch(secondary)
						outstanding++
						continue
					}
				}
				return proxied{}, firstErr
			}
		}
	}
}

// fetchOne proxies the read to one backend. A 2xx/4xx answer is
// definitive — relayed as-is (4xx is the backend telling the *client*
// it's wrong; another replica would say the same). 5xx and transport
// errors are retryable, carrying any Retry-After hint upward.
func (gw *Gateway) fetchOne(ctx context.Context, b *backendState, path, rawQuery string) (proxied, error) {
	u := b.spec.URL + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return proxied{}, err
	}
	httpResp, err := gw.client.Do(req)
	if err != nil {
		return proxied{}, fmt.Errorf("route: %s: %w", b.spec.URL, err)
	}
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	httpResp.Body.Close()
	if err != nil {
		return proxied{}, fmt.Errorf("route: %s: reading body: %w", b.spec.URL, err)
	}
	if httpResp.StatusCode >= 500 {
		return proxied{}, fmt.Errorf("route: %s: %w", b.spec.URL, &hedge.StatusError{
			Code:       httpResp.StatusCode,
			RetryAfter: hedge.ParseRetryAfter(httpResp.Header),
			Detail:     truncated(body),
		})
	}
	return proxied{
		status:      httpResp.StatusCode,
		contentType: httpResp.Header.Get("Content-Type"),
		body:        body,
	}, nil
}

// markRead updates the backend's circuit breaker with one read outcome:
// BreakerFails consecutive failures open the circuit for the cool-down
// (the replica stops receiving reads), after which tierFor admits it
// again for a half-open trial — one success closes the circuit, another
// failure re-opens it.
func (gw *Gateway) markRead(b *backendState, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.consecFails = 0
		return
	}
	b.readFails++
	b.consecFails++
	if b.consecFails >= gw.opt.BreakerFails && !time.Now().Before(b.breakerUntil) {
		b.breakerUntil = time.Now().Add(gw.opt.BreakerCooldown)
		b.breakerOpens++
		b.consecFails = 0
		gw.logf("route: circuit open for %s (%d consecutive failures, cooling %s)",
			b.spec.URL, gw.opt.BreakerFails, gw.opt.BreakerCooldown)
	}
}

func truncated(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
