// The proxied read path: candidate selection, failover with backoff,
// percentile hedging, and the per-backend circuit breaker.
package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"simrankpp/internal/hedge"
	"simrankpp/internal/serve"
)

// Handler returns the gateway's HTTP mux: /rewrite, /similar and /batch
// proxied to the fleet, /stats and /readyz and /healthz answered locally.
func (gw *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rewrite", gw.handleRead)
	mux.HandleFunc("/similar", gw.handleRead)
	mux.HandleFunc("/batch", gw.handleBatch)
	mux.HandleFunc("/stats", gw.handleStats)
	mux.HandleFunc("/healthz", gw.handleHealthz)
	mux.HandleFunc("/readyz", gw.handleReadyz)
	return mux
}

// proxied is one backend answer, relayed to the client byte-identically.
// The body streams straight from the backend connection — the gateway
// never buffers a success response — so the caller must drain it and
// then call release, which closes the body and cancels the fetch's
// context (returning the connection to the pool or aborting it).
type proxied struct {
	status      int
	contentType string
	body        io.ReadCloser
	release     func()
}

// errNoReplica means candidate selection came up empty — distinct from
// "candidates existed and all attempts on them failed".
var errNoReplica = errors.New("route: no serveable replica")

// affinity maps the request to its snapshot shard through the route
// map; -1 when no router is configured or the node is unknown (unknown
// nodes route anywhere — every replica answers them with the same
// not-found).
func (gw *Gateway) affinity(r *http.Request) (side string, shard int) {
	q := r.URL.Query()
	if ad := q.Get("ad"); ad != "" {
		if gw.opt.Router == nil {
			return "ad", -1
		}
		if _, s, ok := gw.opt.Router.PrevAd(ad); ok {
			return "ad", s
		}
		return "ad", -1
	}
	side = "query"
	if gw.opt.Router == nil {
		return side, -1
	}
	if _, s, ok := gw.opt.Router.PrevQuery(q.Get("q")); ok {
		return side, s
	}
	return side, -1
}

// pinAndRot snapshots the pinned generation and a rotation seed under
// one lock acquisition — what keeps a multi-shard /batch on a single
// generation even if a cutover lands mid-request.
func (gw *Gateway) pinAndRot() (string, int) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	rot := gw.rr
	gw.rr++
	return gw.pinned, rot
}

// candidatesAt returns the replicas eligible for one read of the pinned
// generation, best tier first, rotated within each tier so load spreads
// across equals.
func (gw *Gateway) candidatesAt(pin string, rot int, side string, shard int) []*backendState {
	if pin == "" {
		return nil
	}
	now := time.Now()
	var tiers [3][]*backendState
	n := len(gw.backends)
	for i := 0; i < n; i++ {
		b := gw.backends[(rot+i)%n]
		if tier, ok := b.tierFor(pin, side, shard, now); ok {
			tiers[tier] = append(tiers[tier], b)
		}
	}
	var order []*backendState
	order = append(order, tiers[0]...)
	order = append(order, tiers[1]...)
	order = append(order, tiers[2]...)
	return order
}

// candidates is candidatesAt under a freshly-snapshotted pin.
func (gw *Gateway) candidates(side string, shard int) (pin string, order []*backendState) {
	pin, rot := gw.pinAndRot()
	return pin, gw.candidatesAt(pin, rot, side, shard)
}

func (gw *Gateway) handleRead(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	side, shard := gw.affinity(r)
	pin, order := gw.candidates(side, shard)
	if len(order) == 0 {
		gw.noReplica.Add(1)
		gw.unavailable(w, "no replica can serve this request")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), gw.opt.RequestTimeout)
	defer cancel()
	resp, err := gw.fetchFailover(ctx, order, http.MethodGet, r.URL.Path, r.URL.RawQuery, nil)
	if err != nil {
		gw.unavailable(w, err.Error())
		return
	}
	gw.proxied.Add(1)
	h := w.Header()
	if resp.contentType != "" {
		h.Set("Content-Type", resp.contentType)
	}
	// Stamp which generation answered — the consistency guarantee made
	// observable (and assertable by the chaos suite).
	h.Set("Simrank-Generation", pin)
	w.WriteHeader(resp.status)
	// Stream backend to client without a gateway-side copy of the body.
	io.Copy(w, resp.body)
	resp.release()
}

// unavailable is the gateway's degraded contract: 503 + Retry-After,
// mirroring simrankd's own shedding, so clients back off instead of
// hammering a fleet that cannot answer.
func (gw *Gateway) unavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(gw.opt.RetryAfterSeconds))
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// fetchFailover runs dispatch rounds over the candidate list until one
// answers, backing off between rounds under the shared equal-jitter
// schedule floored at any Retry-After a failed backend sent.
func (gw *Gateway) fetchFailover(ctx context.Context, order []*backendState, method, path, rawQuery string, reqBody []byte) (proxied, error) {
	tried := make(map[*backendState]bool)
	// pick returns the best untried candidate (skipping exclude), and
	// starts a fresh pass once everyone has been tried — later rounds
	// may succeed on a replica that failed earlier.
	pick := func(exclude *backendState) *backendState {
		for pass := 0; pass < 2; pass++ {
			for _, b := range order {
				if !tried[b] && b != exclude {
					tried[b] = true
					return b
				}
			}
			tried = make(map[*backendState]bool)
		}
		// Only the excluded replica remains: hand it back rather than
		// stall; callers needing a *distinct* replica filter it out.
		if exclude != nil && len(order) > 0 {
			return order[0]
		}
		return nil
	}
	var lastErr error
	failed := false
	for attempt := 1; attempt <= gw.opt.MaxAttempts; attempt++ {
		if attempt > 1 {
			gw.retries.Add(1)
			if err := gw.backoff.Sleep(ctx, attempt-1, hedge.RetryAfterHint(lastErr)); err != nil {
				return proxied{}, fmt.Errorf("route: %w (last error: %v)", err, lastErr)
			}
		}
		resp, err := gw.fetchHedged(ctx, pick, method, path, rawQuery, reqBody)
		if err == nil {
			if failed {
				gw.failovers.Add(1)
			}
			return resp, nil
		}
		failed = true
		lastErr = err
		if ctx.Err() != nil {
			return proxied{}, fmt.Errorf("route: %w (last error: %v)", ctx.Err(), lastErr)
		}
	}
	return proxied{}, fmt.Errorf("route: all %d attempts failed: %w", gw.opt.MaxAttempts, lastErr)
}

// fetchHedged sends the read to one replica and, if no answer lands
// within the completed-read latency percentile, mirrors it to a second
// replica and takes whichever answers first — the tail-at-scale hedge,
// same shape as internal/dist's write-side hedging.
//
// Each launch gets its own cancelable context: since success bodies now
// stream, the winner's connection must outlive this function (its cancel
// is deferred to the response's release), while the loser is aborted the
// moment a winner is chosen instead of riding a shared context.
func (gw *Gateway) fetchHedged(ctx context.Context, pick func(exclude *backendState) *backendState, method, path, rawQuery string, reqBody []byte) (proxied, error) {
	primary := pick(nil)
	if primary == nil {
		return proxied{}, errNoReplica
	}
	type result struct {
		resp   proxied
		err    error
		b      *backendState
		idx    int
		cancel context.CancelFunc
	}
	results := make(chan result, 2)
	var cancels []context.CancelFunc
	launch := func(b *backendState) {
		lctx, lcancel := context.WithCancel(ctx)
		idx := len(cancels)
		cancels = append(cancels, lcancel)
		go func() {
			started := time.Now()
			resp, err := gw.fetchOne(lctx, b, method, path, rawQuery, reqBody)
			if err == nil {
				gw.lat.Record(time.Since(started))
			}
			gw.markRead(b, err == nil)
			results <- result{resp, err, b, idx, lcancel}
		}()
	}
	// reap drains n straggler results in the background, closing any
	// body a losing-but-successful fetch delivered after the decision.
	reap := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for i := 0; i < n; i++ {
				r := <-results
				if r.resp.body != nil {
					r.resp.body.Close()
				}
				r.cancel()
			}
		}()
	}
	launch(primary)
	outstanding := 1
	hedged := false

	var hedgeCh <-chan time.Time
	if delay, ok := gw.lat.Delay(); ok {
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeCh = t.C
	}
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			reap(outstanding)
			return proxied{}, ctx.Err()
		case <-hedgeCh:
			hedgeCh = nil
			if secondary := pick(primary); secondary != nil && secondary != primary {
				gw.hedges.Add(1)
				hedged = true
				launch(secondary)
				outstanding++
			}
		case res := <-results:
			if res.err == nil {
				if hedged && res.b != primary {
					gw.failovers.Add(1)
				}
				// Abort the loser (if any) and hand the winner back with
				// a release that both closes the streamed body and frees
				// the winner's context.
				for i, c := range cancels {
					if i != res.idx {
						c()
					}
				}
				reap(outstanding - 1)
				body, cancel := res.resp.body, res.cancel
				res.resp.release = func() {
					body.Close()
					cancel()
				}
				return res.resp, nil
			}
			res.cancel()
			if firstErr == nil {
				firstErr = res.err
			}
			outstanding--
			if outstanding == 0 {
				// Primary failed fast and no hedge is pending: fire the
				// hedge immediately rather than waiting out the timer.
				if hedgeCh != nil {
					hedgeCh = nil
					if secondary := pick(primary); secondary != nil && secondary != primary {
						gw.hedges.Add(1)
						hedged = true
						launch(secondary)
						outstanding++
						continue
					}
				}
				return proxied{}, firstErr
			}
		}
	}
}

// errBodyCap bounds how much of a failure response the gateway reads for
// the error detail (it used to slurp up to 64 MiB for a 200-byte
// message); bodyBuffer bounds how much of a success response is buffered
// before the gateway switches to pass-through streaming. Up to
// bodyBuffer, a body cut mid-transfer is still detected here and fails
// over to another replica byte-identically; past it — far beyond any
// rewrite/batch answer — the remainder streams to the client with
// gateway memory capped, at the cost of mid-stream failover.
const (
	errBodyCap = 4 << 10
	bodyBuffer = 256 << 10
)

// spillBody is a buffered head re-joined with its still-streaming tail.
type spillBody struct {
	r io.Reader
	c io.Closer
}

func (b *spillBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *spillBody) Close() error               { return b.c.Close() }

// fetchOne proxies the read to one backend. A 2xx/4xx answer is
// definitive — relayed as-is (4xx is the backend telling the *client*
// it's wrong; another replica would say the same). 5xx and transport
// errors — including a connection cut within the buffered window — are
// retryable, carrying any Retry-After hint upward.
func (gw *Gateway) fetchOne(ctx context.Context, b *backendState, method, path, rawQuery string, reqBody []byte) (proxied, error) {
	u := b.spec.URL + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	var br io.Reader
	if reqBody != nil {
		br = bytes.NewReader(reqBody)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, br)
	if err != nil {
		return proxied{}, err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	httpResp, err := gw.client.Do(req)
	if err != nil {
		return proxied{}, fmt.Errorf("route: %s: %w", b.spec.URL, err)
	}
	if httpResp.StatusCode >= 500 {
		detail, _ := io.ReadAll(io.LimitReader(httpResp.Body, errBodyCap))
		httpResp.Body.Close()
		return proxied{}, fmt.Errorf("route: %s: %w", b.spec.URL, &hedge.StatusError{
			Code:       httpResp.StatusCode,
			RetryAfter: hedge.ParseRetryAfter(httpResp.Header),
			Detail:     truncated(detail),
		})
	}
	head, err := io.ReadAll(io.LimitReader(httpResp.Body, bodyBuffer+1))
	if err != nil {
		httpResp.Body.Close()
		return proxied{}, fmt.Errorf("route: %s: reading body: %w", b.spec.URL, err)
	}
	resp := proxied{
		status:      httpResp.StatusCode,
		contentType: httpResp.Header.Get("Content-Type"),
	}
	if len(head) <= bodyBuffer {
		// Complete within the buffer: the connection is done with, and
		// any truncation already surfaced as a retryable error above.
		httpResp.Body.Close()
		resp.body = io.NopCloser(bytes.NewReader(head))
		return resp, nil
	}
	resp.body = &spillBody{r: io.MultiReader(bytes.NewReader(head), httpResp.Body), c: httpResp.Body}
	return resp, nil
}

// handleBatch relays POST /batch across the fleet shard-affinely: the
// queries are grouped by snapshot shard through the router, each group
// goes to a replica holding that shard as its own sub-batch — all under
// the one generation pinned at entry — and the answers are merged back
// into request order. A group whose replicas all fail degrades to
// per-item errors (status 503) instead of failing the queries other
// shards already answered; the response is an all-fleet-down 503 only
// when no group got through.
func (gw *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a JSON body to /batch", http.StatusMethodNotAllowed)
		return
	}
	var req serve.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad batch body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty batch: give queries", http.StatusBadRequest)
		return
	}

	// Group positions by shard; without a router everything is one group
	// on the any-shard path, exactly like /rewrite's affinity fallback.
	groups := make(map[int][]int)
	for i, q := range req.Queries {
		shard := -1
		if gw.opt.Router != nil {
			if _, s, ok := gw.opt.Router.PrevQuery(q); ok {
				shard = s
			}
		}
		groups[shard] = append(groups[shard], i)
	}

	pin, rot := gw.pinAndRot()
	ctx, cancel := context.WithTimeout(r.Context(), gw.opt.RequestTimeout)
	defer cancel()

	results := make([]json.RawMessage, len(req.Queries))
	var okGroups atomic.Int64
	var wg sync.WaitGroup
	gi := 0
	for shard, idx := range groups {
		wg.Add(1)
		go func(shard, gi int, idx []int) {
			defer wg.Done()
			fail := func(msg string, status int) {
				for _, i := range idx {
					item, err := json.Marshal(serve.BatchItemError{Query: req.Queries[i], Error: msg, Status: status})
					if err != nil {
						item = []byte(`{"error":"internal error","status":500}`)
					}
					results[i] = item
				}
			}
			sub := serve.BatchRequest{Queries: make([]string, len(idx)), Top: req.Top}
			for j, i := range idx {
				sub.Queries[j] = req.Queries[i]
			}
			payload, err := json.Marshal(sub)
			if err != nil {
				fail(err.Error(), http.StatusInternalServerError)
				return
			}
			order := gw.candidatesAt(pin, rot+gi, "query", shard)
			if len(order) == 0 {
				gw.noReplica.Add(1)
				fail("no replica can serve this shard", http.StatusServiceUnavailable)
				return
			}
			resp, err := gw.fetchFailover(ctx, order, http.MethodPost, "/batch", "", payload)
			if err != nil {
				fail(err.Error(), http.StatusServiceUnavailable)
				return
			}
			raw, err := io.ReadAll(io.LimitReader(resp.body, 64<<20))
			resp.release()
			if err != nil {
				fail(err.Error(), http.StatusServiceUnavailable)
				return
			}
			var br serve.BatchResponse
			if resp.status != http.StatusOK || json.Unmarshal(raw, &br) != nil || len(br.Results) != len(idx) {
				// A definitive non-200 (the backend rejecting the batch)
				// or a malformed answer: surface it per item with the
				// backend's status so the client sees why.
				status := resp.status
				if status == http.StatusOK {
					status = http.StatusBadGateway
				}
				fail(truncated(raw), status)
				return
			}
			for j, i := range idx {
				results[i] = br.Results[j]
			}
			okGroups.Add(1)
		}(shard, gi, idx)
		gi++
	}
	wg.Wait()
	if okGroups.Load() == 0 && pin == "" {
		gw.noReplica.Add(1)
		gw.unavailable(w, "no replica can serve this request")
		return
	}
	gw.proxied.Add(1)
	body, err := json.Marshal(serve.BatchResponse{Results: results})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Simrank-Generation", pin)
	w.Write(append(body, '\n'))
}

// markRead updates the backend's circuit breaker with one read outcome:
// BreakerFails consecutive failures open the circuit for the cool-down
// (the replica stops receiving reads), after which tierFor admits it
// again for a half-open trial — one success closes the circuit, another
// failure re-opens it.
func (gw *Gateway) markRead(b *backendState, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.consecFails = 0
		return
	}
	b.readFails++
	b.consecFails++
	if b.consecFails >= gw.opt.BreakerFails && !time.Now().Before(b.breakerUntil) {
		b.breakerUntil = time.Now().Add(gw.opt.BreakerCooldown)
		b.breakerOpens++
		b.consecFails = 0
		gw.logf("route: circuit open for %s (%d consecutive failures, cooling %s)",
			b.spec.URL, gw.opt.BreakerFails, gw.opt.BreakerCooldown)
	}
}

func truncated(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
