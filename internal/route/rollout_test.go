package route

import (
	"testing"
	"time"
)

// The rollout tests drive updateRollout directly on synthetic fleet
// states — no HTTP — so every edge of the two-phase cutover is a
// one-line table row: quorum lost mid-cutover, a replica rejoining on
// the old generation, single-replica fleets, forced failover, rollback.

// bstate is one replica's probed condition for a table row.
type bstate struct {
	health Health
	gen    string
	genID  uint64
}

func mkRolloutGw(t *testing.T, quorum float64, states []bstate) *Gateway {
	t.Helper()
	specs := make([]BackendSpec, len(states))
	for i := range states {
		specs[i] = BackendSpec{URL: "http://replica"}
	}
	gw, err := New(Options{Backends: specs, Quorum: quorum})
	if err != nil {
		t.Fatal(err)
	}
	applyStates(gw, states)
	return gw
}

func applyStates(gw *Gateway, states []bstate) {
	for i, s := range states {
		b := gw.backends[i]
		b.mu.Lock()
		b.health, b.gen, b.genID = s.health, s.gen, s.genID
		b.mu.Unlock()
	}
	gw.updateRollout()
}

func TestRolloutStateMachine(t *testing.T) {
	const g1, g2 = "aaaa", "bbbb"
	cases := []struct {
		name   string
		quorum float64
		// steps are successive fleet states; updateRollout runs after each.
		steps       [][]bstate
		wantPinned  string
		wantPending string
		wantCuts    int64
		wantForced  int64
	}{
		{
			name:   "first pin takes best-represented generation",
			quorum: 0.51,
			steps: [][]bstate{{
				{HealthOK, g1, 1}, {HealthOK, g1, 1}, {HealthOK, g2, 2},
			}},
			wantPinned: g1,
		},
		{
			name:   "first pin ties break to newest generation id",
			quorum: 0.51,
			steps: [][]bstate{{
				{HealthOK, g1, 1}, {HealthOK, g2, 2},
			}},
			wantPinned: g2,
		},
		{
			name:   "new generation below quorum stays pending",
			quorum: 0.51,
			steps: [][]bstate{
				{{HealthOK, g1, 1}, {HealthOK, g1, 1}, {HealthOK, g1, 1}},
				{{HealthOK, g2, 2}, {HealthOK, g1, 1}, {HealthOK, g1, 1}},
			},
			wantPinned:  g1,
			wantPending: g2,
		},
		{
			name:   "quorum reached cuts over",
			quorum: 0.51,
			steps: [][]bstate{
				{{HealthOK, g1, 1}, {HealthOK, g1, 1}, {HealthOK, g1, 1}},
				{{HealthOK, g2, 2}, {HealthOK, g2, 2}, {HealthOK, g1, 1}},
			},
			wantPinned: g2,
			wantCuts:   1,
		},
		{
			name:   "quorum lost mid-cutover holds the old pin",
			quorum: 0.51,
			steps: [][]bstate{
				{{HealthOK, g1, 1}, {HealthOK, g1, 1}, {HealthOK, g1, 1}},
				// One replica on g2, one crashed mid-rollout, one still g1:
				// neither generation holds quorum (need 2) but g1 is alive —
				// reads stay consistently on g1.
				{{HealthOK, g2, 2}, {HealthUnreachable, "", 0}, {HealthOK, g1, 1}},
			},
			wantPinned:  g1,
			wantPending: g2,
		},
		{
			name:   "replica rejoining on old generation cannot drag the pin back",
			quorum: 0.51,
			steps: [][]bstate{
				{{HealthOK, g2, 2}, {HealthOK, g2, 2}, {HealthUnreachable, "", 0}},
				// The laggard comes back up still serving g1: below quorum,
				// so it pends at best and the fleet stays on g2.
				{{HealthOK, g2, 2}, {HealthOK, g2, 2}, {HealthOK, g1, 1}},
			},
			wantPinned:  g2,
			wantPending: g1,
		},
		{
			name:   "single-replica fleet cuts over immediately",
			quorum: 0.51,
			steps: [][]bstate{
				{{HealthOK, g1, 1}},
				{{HealthOK, g2, 2}},
			},
			wantPinned: g2,
			wantCuts:   1,
		},
		{
			name:   "degraded replicas count toward quorum",
			quorum: 0.51,
			steps: [][]bstate{
				{{HealthOK, g1, 1}, {HealthOK, g1, 1}, {HealthOK, g1, 1}},
				{{HealthDegraded, g2, 2}, {HealthDegraded, g2, 2}, {HealthOK, g1, 1}},
			},
			wantPinned: g2,
			wantCuts:   1,
		},
		{
			name:   "unready replicas do not count toward quorum",
			quorum: 0.51,
			steps: [][]bstate{
				{{HealthOK, g1, 1}, {HealthOK, g1, 1}, {HealthOK, g1, 1}},
				{{HealthOK, g2, 2}, {HealthUnready, g2, 2}, {HealthOK, g1, 1}},
			},
			wantPinned:  g1,
			wantPending: g2,
		},
		{
			name:   "forced failover when the pinned generation has no live replicas",
			quorum: 0.51,
			steps: [][]bstate{
				{{HealthOK, g1, 1}, {HealthOK, g1, 1}, {HealthOK, g1, 1}},
				// Rollout goes wrong: two g1 replicas die, the third came up
				// on g2. g2 is below quorum (1 < 2) but g1 has nothing left —
				// serving g2 consistently beats serving nothing.
				{{HealthOK, g2, 2}, {HealthUnreachable, "", 0}, {HealthUnreachable, "", 0}},
			},
			wantPinned: g2,
			wantCuts:   1,
			wantForced: 1,
		},
		{
			name:   "rollback is a symmetric cutover",
			quorum: 0.51,
			steps: [][]bstate{
				{{HealthOK, g2, 2}, {HealthOK, g2, 2}, {HealthOK, g2, 2}},
				// Operators re-push the old generation to a quorum.
				{{HealthOK, g1, 1}, {HealthOK, g1, 1}, {HealthOK, g2, 2}},
			},
			wantPinned: g1,
			wantCuts:   1,
		},
		{
			name:   "unanimous quorum waits for every replica",
			quorum: 1.0,
			steps: [][]bstate{
				{{HealthOK, g1, 1}, {HealthOK, g1, 1}},
				{{HealthOK, g2, 2}, {HealthOK, g1, 1}},
			},
			wantPinned:  g1,
			wantPending: g2,
		},
		{
			name:   "all dead keeps the last pin",
			quorum: 0.51,
			steps: [][]bstate{
				{{HealthOK, g1, 1}, {HealthOK, g1, 1}},
				{{HealthUnreachable, "", 0}, {HealthUnreachable, "", 0}},
			},
			wantPinned: g1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			gw := mkRolloutGw(t, c.quorum, c.steps[0])
			for _, step := range c.steps[1:] {
				applyStates(gw, step)
			}
			st := gw.rolloutStatus()
			if st.Pinned != c.wantPinned {
				t.Errorf("pinned = %q, want %q", st.Pinned, c.wantPinned)
			}
			if st.Pending != c.wantPending {
				t.Errorf("pending = %q, want %q", st.Pending, c.wantPending)
			}
			if st.Cutovers != c.wantCuts {
				t.Errorf("cutovers = %d, want %d", st.Cutovers, c.wantCuts)
			}
			if st.Forced != c.wantForced {
				t.Errorf("forced = %d, want %d", st.Forced, c.wantForced)
			}
		})
	}
}

// TestRejoinedOldGenerationExcludedFromRouting closes the loop on the
// rejoin case: the old-generation replica is not merely outvoted, it
// receives no reads while off the pinned generation.
func TestRejoinedOldGenerationExcludedFromRouting(t *testing.T) {
	const g1, g2 = "aaaa", "bbbb"
	gw := mkRolloutGw(t, 0.51, []bstate{
		{HealthOK, g2, 2}, {HealthOK, g2, 2}, {HealthOK, g1, 1},
	})
	if pin := gw.Pinned(); pin != g2 {
		t.Fatalf("pinned %q, want %q", pin, g2)
	}
	laggard := gw.backends[2]
	for i := 0; i < 10; i++ {
		_, order := gw.candidates("query", -1)
		for _, b := range order {
			if b == laggard {
				t.Fatal("old-generation replica offered as a read candidate")
			}
		}
		if len(order) != 2 {
			t.Fatalf("got %d candidates, want 2", len(order))
		}
	}
	if _, ok := laggard.tierFor(g2, "query", -1, time.Now()); ok {
		t.Error("tierFor admitted a replica on the wrong generation")
	}
}

// TestQuorumNeed pins the ceil arithmetic at the fleet sizes the
// runbook quotes.
func TestQuorumNeed(t *testing.T) {
	cases := []struct {
		replicas int
		quorum   float64
		want     int
	}{
		{1, 0.51, 1},
		{2, 0.51, 2},
		{3, 0.51, 2},
		{4, 0.51, 3},
		{5, 0.51, 3},
		{3, 1.0, 3},
		{3, 0.34, 2},
	}
	for _, c := range cases {
		states := make([]bstate, c.replicas)
		for i := range states {
			states[i] = bstate{HealthOK, "g", 1}
		}
		gw := mkRolloutGw(t, c.quorum, states)
		if got := gw.quorumNeed(); got != c.want {
			t.Errorf("quorumNeed(%d replicas, quorum %.2f) = %d, want %d",
				c.replicas, c.quorum, got, c.want)
		}
	}
}
