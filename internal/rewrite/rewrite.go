// Package rewrite implements the query-rewriting front-end of Figure 2 and
// the evaluation pipeline of §9.3 of the Simrank++ paper: a similarity
// source proposes up to 100 ranked rewrites per query, duplicates are
// removed by Porter stemming, rewrites outside the bid-term list are
// dropped, and at most 5 survive. The number that survive is the method's
// "depth" for that query.
package rewrite

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/pearson"
	"simrankpp/internal/sparse"
	"simrankpp/internal/stem"
)

// Source proposes ranked rewrite candidates for a query.
type Source interface {
	// Name identifies the method in reports ("simrank", "pearson", ...).
	Name() string
	// Rewrites returns up to limit candidates for query id q, best
	// first; limit < 0 means all.
	Rewrites(q int, limit int) ([]sparse.Scored, error)
}

// ContextSource is an optional Source extension for sources whose
// candidate fetch can honor a request deadline — the serving daemon's
// per-request context reaches the score lookup through it. A Source not
// implementing it is still served; the deadline is then only checked
// between pipeline stages.
type ContextSource interface {
	Source
	RewritesContext(ctx context.Context, q, limit int) ([]sparse.Scored, error)
}

// Scores is the slice of the serving layer's serve.ScoreIndex that
// ResultSource consumes: the ranked partners of one query. Both a live
// *core.Result and a loaded serve.Snapshot satisfy it, which is what makes
// the filtering pipeline engine-agnostic — it never sees whether scores
// came from a just-finished run or a precomputed per-shard snapshot.
type Scores interface {
	// TopRewrites returns the k most similar queries to q, best first;
	// k < 0 means all.
	TopRewrites(q, k int) []sparse.Scored
}

// ContextScores is the deadline-aware variant of Scores; a snapshot
// implements it so a lazy segment load can be skipped when the request
// is already out of time.
type ContextScores interface {
	TopRewritesContext(ctx context.Context, q, k int) ([]sparse.Scored, error)
}

// ResultSource serves rewrites from a precomputed score index (a live
// core.Result or a loaded snapshot).
type ResultSource struct {
	Index Scores
	Label string
}

// Name implements Source. Without an explicit Label it asks the index for
// its variant name (core.Result and serve.Snapshot both provide one) and
// falls back to "simrank".
func (s *ResultSource) Name() string {
	if s.Label != "" {
		return s.Label
	}
	if v, ok := s.Index.(interface{ VariantName() string }); ok {
		return v.VariantName()
	}
	return "simrank"
}

// Rewrites implements Source.
func (s *ResultSource) Rewrites(q, limit int) ([]sparse.Scored, error) {
	return s.Index.TopRewrites(q, limit), nil
}

// RewritesContext implements ContextSource, delegating to the index's
// deadline-aware lookup when it has one.
func (s *ResultSource) RewritesContext(ctx context.Context, q, limit int) ([]sparse.Scored, error) {
	if cs, ok := s.Index.(ContextScores); ok {
		return cs.TopRewritesContext(ctx, q, limit)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Index.TopRewrites(q, limit), nil
}

// PearsonSource serves rewrites from the Pearson-correlation baseline.
type PearsonSource struct {
	Graph   *clickgraph.Graph
	Channel core.WeightChannel
}

// Name implements Source.
func (s *PearsonSource) Name() string { return "pearson" }

// Rewrites implements Source.
func (s *PearsonSource) Rewrites(q, limit int) ([]sparse.Scored, error) {
	return pearson.TopRewrites(s.Graph, s.Channel, q, limit), nil
}

// LocalSource serves rewrites by running the neighborhood-restricted
// SimRank engine per query — the online front-end path.
type LocalSource struct {
	Graph  *clickgraph.Graph
	Config core.Config
	Local  core.LocalConfig
	Label  string
}

// Name implements Source.
func (s *LocalSource) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "local " + s.Config.Variant.String()
}

// Rewrites implements Source.
func (s *LocalSource) Rewrites(q, limit int) ([]sparse.Scored, error) {
	scored, err := core.LocalSimilarities(s.Graph, q, s.Config, s.Local)
	if err != nil {
		return nil, err
	}
	if limit >= 0 && len(scored) > limit {
		scored = scored[:limit]
	}
	return scored, nil
}

// Candidate is one surviving rewrite.
type Candidate struct {
	Query int     // query id in the pipeline's graph
	Text  string  // the rewrite string
	Score float64 // the source's similarity score
}

// QueryNames resolves query ids to display strings — the only part of the
// click graph the filtering pipeline needs, so the pipeline runs equally
// against a *clickgraph.Graph or a serve.ScoreIndex (whose snapshot form
// carries its own string table).
type QueryNames interface {
	NumQueries() int
	Query(id int) string
}

// Pipeline applies the paper's filtering steps to a source's raw ranking.
type Pipeline struct {
	// Graph resolves query ids to strings.
	Graph QueryNames
	// TopN is how many raw candidates to consider per query; the paper
	// records the top 100.
	TopN int
	// MaxRewrites caps the surviving rewrites; the paper keeps at most 5
	// because of manual-evaluation cost.
	MaxRewrites int
	// BidTerms, when non-nil, drops rewrites whose text is not in the
	// set ("bid term filtering").
	BidTerms map[string]bool
}

// NewPipeline returns the paper's settings: top 100 raw, at most 5 kept.
func NewPipeline(g QueryNames, bidTerms map[string]bool) *Pipeline {
	return &Pipeline{Graph: g, TopN: 100, MaxRewrites: 5, BidTerms: bidTerms}
}

// ReadBidTerms parses a bid-term list — one term per line, blank lines
// ignored — into the set Pipeline.BidTerms consumes. Both the batch CLI
// and the serving daemon load their lists through this, so the two
// filtering surfaces cannot drift.
func ReadBidTerms(r io.Reader) (map[string]bool, error) {
	terms := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			terms[line] = true
		}
	}
	return terms, sc.Err()
}

// ReadBidTermsFile is ReadBidTerms over a file path.
func ReadBidTermsFile(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBidTerms(f)
}

// Rewrite runs the full pipeline for query id q against src.
func (p *Pipeline) Rewrite(src Source, q int) ([]Candidate, error) {
	return p.RewriteContext(context.Background(), src, q)
}

// RewriteContext is Rewrite under a request deadline: the context is
// checked before the candidate fetch, handed to the source when it can
// honor it (ContextSource — a snapshot-backed source aborts before a
// lazy segment load), and re-checked after, so a serving daemon's
// per-request timeout bounds the whole rewrite path.
func (p *Pipeline) RewriteContext(ctx context.Context, src Source, q int) ([]Candidate, error) {
	if q < 0 || q >= p.Graph.NumQueries() {
		return nil, fmt.Errorf("rewrite: query id %d outside [0,%d)", q, p.Graph.NumQueries())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var raw []sparse.Scored
	var err error
	if cs, ok := src.(ContextSource); ok {
		raw, err = cs.RewritesContext(ctx, q, p.TopN)
	} else {
		raw, err = src.Rewrites(q, p.TopN)
	}
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("rewrite: source %s: %w", src.Name(), err)
	}
	if err := ctx.Err(); err != nil {
		// The fetch may have outlived the deadline on a slow segment
		// load; do not spend more time filtering a dead request.
		return nil, err
	}
	seen := map[string]bool{stem.Phrase(p.Graph.Query(q)): true}
	var out []Candidate
	for _, s := range raw {
		if s.Score <= 0 {
			continue
		}
		text := p.Graph.Query(s.Node)
		key := stem.Phrase(text)
		if seen[key] {
			continue // duplicate under stemming
		}
		if p.BidTerms != nil && !p.BidTerms[text] {
			continue // no advertiser bids on this rewrite
		}
		seen[key] = true
		out = append(out, Candidate{Query: s.Node, Text: text, Score: s.Score})
		if p.MaxRewrites > 0 && len(out) >= p.MaxRewrites {
			break
		}
	}
	return out, nil
}

// RewriteAll runs the pipeline for every query id in sample and returns
// the per-query candidate lists, keyed by query id.
func (p *Pipeline) RewriteAll(src Source, sample []int) (map[int][]Candidate, error) {
	out := make(map[int][]Candidate, len(sample))
	for _, q := range sample {
		c, err := p.Rewrite(src, q)
		if err != nil {
			return nil, err
		}
		out[q] = c
	}
	return out, nil
}
