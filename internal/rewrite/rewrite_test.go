package rewrite

import (
	"errors"
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/sparse"
)

// stubSource returns a fixed ranking.
type stubSource struct {
	name string
	out  []sparse.Scored
	err  error
}

func (s *stubSource) Name() string { return s.name }
func (s *stubSource) Rewrites(q, limit int) ([]sparse.Scored, error) {
	if s.err != nil {
		return nil, s.err
	}
	out := s.out
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// pipelineGraph builds a graph whose query strings exercise stemming and
// bid filtering.
func pipelineGraph(t *testing.T) *clickgraph.Graph {
	t.Helper()
	b := clickgraph.NewBuilder()
	queries := []string{"camera", "cameras", "digital camera", "battery", "unbid query"}
	for i, q := range queries {
		if err := b.AddClick(q, "ad"+string(rune('0'+i)), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestPipelineStemDedup(t *testing.T) {
	g := pipelineGraph(t)
	cam, _ := g.QueryID("camera")
	cams, _ := g.QueryID("cameras")
	dig, _ := g.QueryID("digital camera")
	src := &stubSource{name: "stub", out: []sparse.Scored{
		{Node: cams, Score: 0.9}, // stems to "camera" — duplicate of source query
		{Node: dig, Score: 0.8},
	}}
	p := NewPipeline(g, nil)
	got, err := p.Rewrite(src, cam)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Text != "digital camera" {
		t.Errorf("pipeline output = %+v, want only digital camera", got)
	}
}

func TestPipelineBidFilter(t *testing.T) {
	g := pipelineGraph(t)
	cam, _ := g.QueryID("camera")
	bat, _ := g.QueryID("battery")
	unbid, _ := g.QueryID("unbid query")
	src := &stubSource{name: "stub", out: []sparse.Scored{
		{Node: unbid, Score: 0.9},
		{Node: bat, Score: 0.8},
	}}
	p := NewPipeline(g, map[string]bool{"battery": true})
	got, err := p.Rewrite(src, cam)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Text != "battery" {
		t.Errorf("bid filter output = %+v, want only battery", got)
	}
}

func TestPipelineDropsNonPositive(t *testing.T) {
	g := pipelineGraph(t)
	cam, _ := g.QueryID("camera")
	bat, _ := g.QueryID("battery")
	src := &stubSource{name: "stub", out: []sparse.Scored{
		{Node: bat, Score: 0},
	}}
	p := NewPipeline(g, nil)
	got, err := p.Rewrite(src, cam)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("zero-score rewrite survived: %+v", got)
	}
}

func TestPipelineMaxRewrites(t *testing.T) {
	b := clickgraph.NewBuilder()
	for i := 0; i < 10; i++ {
		if err := b.AddClick("query-"+string(rune('a'+i)), "ad", 0.5); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	var scored []sparse.Scored
	for i := 1; i < 10; i++ {
		scored = append(scored, sparse.Scored{Node: i, Score: 1 / float64(i)})
	}
	p := NewPipeline(g, nil)
	got, err := p.Rewrite(&stubSource{name: "stub", out: scored}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("depth = %d want 5", len(got))
	}
}

func TestPipelineErrors(t *testing.T) {
	g := pipelineGraph(t)
	p := NewPipeline(g, nil)
	if _, err := p.Rewrite(&stubSource{name: "s"}, -1); err == nil {
		t.Error("accepted negative query id")
	}
	wantErr := errors.New("boom")
	if _, err := p.Rewrite(&stubSource{name: "s", err: wantErr}, 0); err == nil || !errors.Is(err, wantErr) {
		t.Errorf("source error not propagated: %v", err)
	}
}

func TestSourcesEndToEnd(t *testing.T) {
	g := clickgraph.Fig3()
	cfg := core.DefaultConfig()
	res, err := core.Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := g.QueryID("pc")

	sources := []Source{
		&ResultSource{Index: res},
		&PearsonSource{Graph: g, Channel: core.ChannelClicks},
		&LocalSource{Graph: g, Config: cfg, Local: core.DefaultLocalConfig()},
	}
	for _, src := range sources {
		if src.Name() == "" {
			t.Errorf("%T has empty name", src)
		}
		out, err := src.Rewrites(pc, 3)
		if err != nil {
			t.Fatalf("%s: %v", src.Name(), err)
		}
		if len(out) > 3 {
			t.Errorf("%s ignored limit: %d results", src.Name(), len(out))
		}
		for i := 1; i < len(out); i++ {
			if out[i-1].Score < out[i].Score {
				t.Errorf("%s results not sorted", src.Name())
			}
		}
	}

	// The SimRank source must surface the indirect pc-tv rewrite that
	// Pearson cannot see.
	simOut, err := sources[0].Rewrites(pc, -1)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := g.QueryID("tv")
	foundTV := false
	for _, s := range simOut {
		if s.Node == tv {
			foundTV = true
		}
	}
	if !foundTV {
		t.Error("SimRank source missed the indirect pc-tv rewrite")
	}
	pearOut, err := sources[1].Rewrites(pc, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pearOut {
		if s.Node == tv {
			t.Error("Pearson source claims pc-tv similarity without common ads")
		}
	}
}

func TestResultSourceLabel(t *testing.T) {
	g := clickgraph.Fig3()
	res, err := core.Run(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if name := (&ResultSource{Index: res}).Name(); name != "simrank" {
		t.Errorf("default name = %q", name)
	}
	if name := (&ResultSource{Index: res, Label: "custom"}).Name(); name != "custom" {
		t.Errorf("label override = %q", name)
	}
}

func TestRewriteAll(t *testing.T) {
	g := clickgraph.Fig3()
	res, err := core.Run(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(g, nil)
	sample := []int{0, 1, 2}
	all, err := p.RewriteAll(&ResultSource{Index: res}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(sample) {
		t.Errorf("RewriteAll covered %d queries want %d", len(all), len(sample))
	}
}
