// Package sponsored simulates the sponsored-search system of Figures 1-2
// of the Simrank++ paper end to end: a bid database, the back-end ad
// auction with ranking scores, a position-biased user click model, and the
// expected-click-rate estimation that produces the third edge weight of
// the historical click graph.
//
// This simulator is the substitution for the proprietary two-week Yahoo!
// click log: the output is a clickgraph.Graph with the same statistical
// shape (power-law degrees, CTR-derived weights, a dominant connected
// component) plus the bid-term list the evaluation pipeline filters
// against.
package sponsored

import (
	"fmt"
	"math"
	"sort"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/workload"
)

// Bid is one advertiser offer: show ad for query, pay price on click.
type Bid struct {
	Query int // universe query id
	Ad    int // universe ad id
	Price float64
}

// RelevanceTable maps the latent relation between a query's intent and an
// ad's intent to the probability that an examining user clicks.
type RelevanceTable struct {
	SameIntent, SameSubtopic, SameCategory, Unrelated float64
}

// Of returns the click probability for relation r.
func (t RelevanceTable) Of(r workload.Relation) float64 {
	switch r {
	case workload.SameIntent:
		return t.SameIntent
	case workload.SameSubtopic:
		return t.SameSubtopic
	case workload.SameCategory:
		return t.SameCategory
	default:
		return t.Unrelated
	}
}

// Config parameterizes the simulation.
type Config struct {
	// Sessions is the number of simulated query impressions (searches
	// with at least one candidate ad).
	Sessions int
	// Positions is the number of ad slots per results page.
	Positions int
	// BidRate is the probability that an ad places a bid on each query
	// phrasing of its own intent. Lower rates starve direct bids, which
	// is the regime where rewriting matters.
	BidRate float64
	// SiblingBidRate is the probability that an ad also bids on a query
	// of a sibling intent (broad-match advertisers). These bids create
	// the cross-intent edges that make indirect similarity discoverable.
	SiblingBidRate float64
	// CategoryBidRate is the probability that an ad also bids on a query
	// of a same-category, different-subtopic intent (very broad match).
	// These bids seed the grade-3 rewrite candidates and help fuse the
	// category islands into the single giant component the paper's log
	// exhibits.
	CategoryBidRate float64
	// ExploreRate is the probability that the back-end pads the slate
	// with an ad from a related intent even without a bid — the paper
	// notes queries with no bids still have click-graph edges "because of
	// query rewriting that took place when the query was originally
	// submitted". The padded ad comes from a sibling intent most of the
	// time, from elsewhere in the category sometimes, and rarely from a
	// random intent (mirroring historical rewriting quality).
	ExploreRate float64
	// PositionDecay is the exponent of the examination model: the user
	// examines position p with probability p^-PositionDecay.
	PositionDecay float64
	// Relevance is the latent click-probability table.
	Relevance RelevanceTable
	// CTRPrior and CTRPriorRate smooth the expected-click-rate estimate:
	// rate = (clicks + CTRPrior·CTRPriorRate) / (examinations + CTRPrior).
	CTRPrior, CTRPriorRate float64
	// Seed drives the traffic and click randomness.
	Seed uint64
}

// DefaultConfig returns a simulation sized for the experiment harness.
func DefaultConfig() Config {
	return Config{
		Sessions:        600000,
		Positions:       4,
		BidRate:         0.55,
		SiblingBidRate:  0.05,
		CategoryBidRate: 0.008,
		ExploreRate:     0.30,
		PositionDecay:   0.9,
		Relevance: RelevanceTable{
			SameIntent:   0.30,
			SameSubtopic: 0.11,
			SameCategory: 0.05,
			Unrelated:    0.008,
		},
		CTRPrior:     2,
		CTRPriorRate: 0.05,
		Seed:         7,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Sessions < 1 {
		return fmt.Errorf("sponsored: Sessions must be >= 1, got %d", c.Sessions)
	}
	if c.Positions < 1 {
		return fmt.Errorf("sponsored: Positions must be >= 1, got %d", c.Positions)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"BidRate", c.BidRate}, {"SiblingBidRate", c.SiblingBidRate},
		{"CategoryBidRate", c.CategoryBidRate},
		{"ExploreRate", c.ExploreRate},
		{"Relevance.SameIntent", c.Relevance.SameIntent},
		{"Relevance.SameSubtopic", c.Relevance.SameSubtopic},
		{"Relevance.SameCategory", c.Relevance.SameCategory},
		{"Relevance.Unrelated", c.Relevance.Unrelated},
		{"CTRPriorRate", c.CTRPriorRate},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("sponsored: %s must be in [0,1], got %v", p.name, p.v)
		}
	}
	if c.PositionDecay < 0 {
		return fmt.Errorf("sponsored: PositionDecay must be >= 0, got %v", c.PositionDecay)
	}
	if c.CTRPrior < 0 {
		return fmt.Errorf("sponsored: CTRPrior must be >= 0, got %v", c.CTRPrior)
	}
	return nil
}

// Result is the simulation output.
type Result struct {
	// Graph is the historical click graph: only (query, ad) pairs with at
	// least one click become edges, per §2.
	Graph *clickgraph.Graph
	// BidTerms is the set of query strings that saw at least one bid
	// during the window; the evaluation pipeline's bid-term filter keeps
	// only rewrites in this set (§9.3).
	BidTerms map[string]bool
	// Universe is the ground truth the log was generated from.
	Universe *workload.Universe
	// Bids is the full bid database (Figure 1's "bids" store).
	Bids []Bid
	// Sessions is the number of simulated sessions that displayed at
	// least one ad.
	Sessions int
}

// edgeStats accumulates per-(query, ad) observations during simulation.
type edgeStats struct {
	impressions int64
	clicks      int64
	examSum     float64 // Σ examination probability over impressions
}

// Simulate runs the full pipeline: build bids, serve sessions, estimate
// click rates, emit the click graph.
func Simulate(u *workload.Universe, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := workload.NewRNG(cfg.Seed)
	bids, bidsByQuery := buildBids(u, cfg, r.Fork())
	bidTerms := make(map[string]bool)
	for _, b := range bids {
		bidTerms[u.Queries[b.Query].Text] = true
	}

	stats := make(map[[2]int]*edgeStats)
	exam := examinationCurve(cfg)
	click := r.Fork()
	traffic := r.Fork()
	served := 0
	for s := 0; s < cfg.Sessions; s++ {
		q := u.SampleQuery(traffic)
		slate := buildSlate(u, cfg, bidsByQuery, q, click)
		if len(slate) == 0 {
			continue
		}
		served++
		for pos, ad := range slate {
			key := [2]int{q, ad}
			st := stats[key]
			if st == nil {
				st = &edgeStats{}
				stats[key] = st
			}
			st.impressions++
			e := exam[pos]
			st.examSum += e
			rel := cfg.Relevance.Of(u.QueryAdRelation(q, ad))
			p := e * rel * u.Ads[ad].Quality
			if click.Float64() < p {
				st.clicks++
			}
		}
	}

	// Emit edges with >= 1 click; expected click rate is the
	// position-adjusted estimate clicks / examinations with smoothing.
	b := clickgraph.NewBuilder()
	keys := make([][2]int, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		st := stats[k]
		if st.clicks == 0 {
			continue
		}
		rate := (float64(st.clicks) + cfg.CTRPrior*cfg.CTRPriorRate) / (st.examSum + cfg.CTRPrior)
		if rate > 1 {
			rate = 1
		}
		if err := b.AddEdge(u.Queries[k[0]].Text, u.Ads[k[1]].Name, clickgraph.EdgeWeights{
			Impressions:       st.impressions,
			Clicks:            st.clicks,
			ExpectedClickRate: rate,
		}); err != nil {
			return nil, err
		}
	}
	return &Result{
		Graph:    b.Build(),
		BidTerms: bidTerms,
		Universe: u,
		Bids:     bids,
		Sessions: served,
	}, nil
}

// buildBids constructs the bid database: each ad bids on its own intent's
// query phrasings with BidRate and on sibling-intent phrasings with
// SiblingBidRate. Prices are bounded-Pareto distributed.
func buildBids(u *workload.Universe, cfg Config, r *workload.RNG) ([]Bid, map[int][]Bid) {
	price, err := workload.NewPareto(0.05, 5.0, 1.2)
	if err != nil {
		// Static parameters; cannot fail.
		panic(err)
	}
	var bids []Bid
	byQuery := make(map[int][]Bid)
	add := func(q, ad int) {
		b := Bid{Query: q, Ad: ad, Price: price.Sample(r)}
		bids = append(bids, b)
		byQuery[q] = append(byQuery[q], b)
	}
	for _, ad := range u.Ads {
		for _, q := range u.IntentQueries(ad.Intent) {
			if r.Float64() < cfg.BidRate {
				add(q, ad.ID)
			}
		}
		if cfg.SiblingBidRate > 0 {
			for _, sib := range u.SiblingIntents(ad.Intent) {
				for _, q := range u.IntentQueries(sib) {
					if r.Float64() < cfg.SiblingBidRate {
						add(q, ad.ID)
					}
				}
			}
		}
		if cfg.CategoryBidRate > 0 {
			for _, rel := range u.CategoryIntents(ad.Intent) {
				for _, q := range u.IntentQueries(rel) {
					if r.Float64() < cfg.CategoryBidRate {
						add(q, ad.ID)
					}
				}
			}
		}
	}
	return bids, byQuery
}

// buildSlate runs the back-end auction for query q: candidates are the
// bidding ads ranked by price × quality (the paper's "ranking score which
// is a function of the semantic relevance ... and the advertiser's bid"),
// optionally padded with an exploratory sibling-intent ad.
func buildSlate(u *workload.Universe, cfg Config, bidsByQuery map[int][]Bid, q int, r *workload.RNG) []int {
	type cand struct {
		ad    int
		score float64
	}
	var cands []cand
	seen := make(map[int]bool)
	for _, b := range bidsByQuery[q] {
		if seen[b.Ad] {
			continue
		}
		seen[b.Ad] = true
		cands = append(cands, cand{ad: b.Ad, score: b.Price * u.Ads[b.Ad].Quality})
	}
	if r.Float64() < cfg.ExploreRate {
		// Pad with one ad from a related intent (historical front-end
		// rewriting): usually a sibling, sometimes elsewhere in the
		// category, rarely anywhere.
		intent := u.Queries[q].Intent
		var pool []int
		switch roll := r.Float64(); {
		case roll < 0.70:
			pool = u.SiblingIntents(intent)
		case roll < 0.95:
			pool = u.CategoryIntents(intent)
		default:
			pool = []int{r.Intn(len(u.Intents))}
		}
		if len(pool) > 0 {
			ads := u.IntentAds(pool[r.Intn(len(pool))])
			if len(ads) > 0 {
				ad := ads[r.Intn(len(ads))]
				if !seen[ad] {
					cands = append(cands, cand{ad: ad, score: 0.01 * u.Ads[ad].Quality})
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].ad < cands[j].ad
	})
	n := len(cands)
	if n > cfg.Positions {
		n = cfg.Positions
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].ad
	}
	return out
}

// examinationCurve returns the probability the user examines each slot.
func examinationCurve(cfg Config) []float64 {
	out := make([]float64, cfg.Positions)
	for p := range out {
		out[p] = math.Pow(float64(p+1), -cfg.PositionDecay)
	}
	return out
}
