package sponsored

import (
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/workload"
)

// The expected click rate must be position-adjusted (§2): an ad's rate
// estimate should track its latent click propensity, not how often it
// happened to sit at position 1. We verify the estimator denominator
// uses examination-weighted impressions: with a steep position decay,
// raw clicks/impressions at deep positions understate propensity while
// the adjusted rate does not, so adjusted rate >= raw CTR on average.
func TestExpectedClickRatePositionAdjusted(t *testing.T) {
	cfg := workload.DefaultUniverseConfig()
	cfg.Categories = 3
	cfg.SubtopicsPerCategory = 3
	cfg.IntentsPerSubtopic = 3
	u, err := workload.BuildUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := DefaultConfig()
	scfg.Sessions = 40000
	scfg.PositionDecay = 1.5 // steep bias
	res, err := Simulate(u, scfg)
	if err != nil {
		t.Fatal(err)
	}
	// The adjustment divides clicks by examination-weighted impressions,
	// so edges served at deep positions (low examination) get boosted
	// relative to their raw clicks/impressions, while edges served at
	// the top slot do not. Compare the mean adjusted/raw ratio between
	// the two groups, using the graph's own impressions and the latent
	// intent relation to locate deep-position edges: exploratory
	// sibling-intent ads are the ones padded at the bottom of the slate.
	var topSum, topN, deepSum, deepN float64
	res.Graph.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
		if w.Impressions < 30 || w.Clicks < 3 {
			return true
		}
		raw := float64(w.Clicks) / float64(w.Impressions)
		if raw == 0 {
			return true
		}
		r := w.ExpectedClickRate / raw
		qu, ok := u.QueryByText(res.Graph.Query(q))
		if !ok {
			t.Fatalf("query %q missing from universe", res.Graph.Query(q))
		}
		adID := -1
		for _, ad := range u.Ads {
			if ad.Name == res.Graph.Ad(a) {
				adID = ad.ID
				break
			}
		}
		if adID < 0 {
			t.Fatalf("ad %q missing from universe", res.Graph.Ad(a))
		}
		if u.QueryAdRelation(qu.ID, adID) == workload.SameIntent {
			// Same-intent ads win the auction and sit near the top.
			topSum += r
			topN++
		} else {
			// Related-intent ads are padded at deeper positions.
			deepSum += r
			deepN++
		}
		return true
	})
	if topN == 0 || deepN == 0 {
		t.Skip("not enough well-observed edges in both position groups")
	}
	topMean, deepMean := topSum/topN, deepSum/deepN
	if !(deepMean > topMean) {
		t.Errorf("position adjustment should boost deep-position edges: deep ratio %.3f, top ratio %.3f",
			deepMean, topMean)
	}
}

// The examination curve must be decreasing in position.
func TestExaminationCurve(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Positions = 6
	exam := examinationCurve(cfg)
	if len(exam) != 6 {
		t.Fatalf("curve length %d", len(exam))
	}
	if exam[0] != 1 {
		t.Errorf("position 1 examination = %v want 1", exam[0])
	}
	for i := 1; i < len(exam); i++ {
		if exam[i] >= exam[i-1] {
			t.Errorf("examination not decreasing at position %d: %v >= %v", i+1, exam[i], exam[i-1])
		}
	}
	// Zero decay disables the bias entirely.
	cfg.PositionDecay = 0
	for _, e := range examinationCurve(cfg) {
		if e != 1 {
			t.Errorf("zero decay should examine every slot: %v", e)
		}
	}
}
