package sponsored

import (
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/workload"
)

func smallUniverse(t *testing.T) *workload.Universe {
	t.Helper()
	cfg := workload.DefaultUniverseConfig()
	cfg.Categories = 4
	cfg.SubtopicsPerCategory = 3
	cfg.IntentsPerSubtopic = 3
	u, err := workload.BuildUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Sessions = 30000
	return cfg
}

func TestSimulateBasics(t *testing.T) {
	u := smallUniverse(t)
	res, err := Simulate(u, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumEdges() == 0 {
		t.Fatal("simulation produced no click edges")
	}
	if len(res.BidTerms) == 0 {
		t.Fatal("no bid terms recorded")
	}
	if res.Sessions == 0 {
		t.Fatal("no sessions served")
	}
	// Every edge must satisfy the physical constraints of §2.
	g.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
		if w.Clicks < 1 {
			t.Errorf("edge (%s,%s) has %d clicks; click graph edges need >= 1",
				g.Query(q), g.Ad(a), w.Clicks)
		}
		if w.Clicks > w.Impressions {
			t.Errorf("edge (%s,%s): clicks %d > impressions %d",
				g.Query(q), g.Ad(a), w.Clicks, w.Impressions)
		}
		if w.ExpectedClickRate <= 0 || w.ExpectedClickRate > 1 {
			t.Errorf("edge (%s,%s): rate %v outside (0,1]",
				g.Query(q), g.Ad(a), w.ExpectedClickRate)
		}
		return true
	})
}

func TestSimulateDeterminism(t *testing.T) {
	u := smallUniverse(t)
	a, err := Simulate(u, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(u, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() ||
		a.Graph.NumQueries() != b.Graph.NumQueries() {
		t.Fatal("same seed produced different graphs")
	}
	cfg := smallConfig()
	cfg.Seed++
	c, err := Simulate(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.NumEdges() == a.Graph.NumEdges() && c.Graph.NumQueries() == a.Graph.NumQueries() &&
		c.Sessions == a.Sessions {
		t.Log("different seed produced same summary stats (possible but unlikely)")
	}
}

func TestSimulateValidation(t *testing.T) {
	u := smallUniverse(t)
	cases := []func(*Config){
		func(c *Config) { c.Sessions = 0 },
		func(c *Config) { c.Positions = 0 },
		func(c *Config) { c.BidRate = 1.5 },
		func(c *Config) { c.SiblingBidRate = -0.1 },
		func(c *Config) { c.CategoryBidRate = 2 },
		func(c *Config) { c.ExploreRate = -1 },
		func(c *Config) { c.PositionDecay = -1 },
		func(c *Config) { c.Relevance.SameIntent = 1.2 },
		func(c *Config) { c.CTRPrior = -1 },
		func(c *Config) { c.CTRPriorRate = 7 },
	}
	for i, mut := range cases {
		cfg := smallConfig()
		mut(&cfg)
		if _, err := Simulate(u, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// The click model must click same-intent ads far more often than
// unrelated ones — otherwise the editorial experiments are meaningless.
func TestClickRelevanceOrdering(t *testing.T) {
	u := smallUniverse(t)
	res, err := Simulate(u, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	var clicksByRelation [4]int64
	g.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
		qu, ok1 := u.QueryByText(g.Query(q))
		if !ok1 {
			t.Fatalf("query %q not in universe", g.Query(q))
		}
		adID := -1
		for _, ad := range u.Ads {
			if ad.Name == g.Ad(a) {
				adID = ad.ID
				break
			}
		}
		if adID < 0 {
			t.Fatalf("ad %q not in universe", g.Ad(a))
		}
		rel := u.QueryAdRelation(qu.ID, adID)
		clicksByRelation[int(rel)] += w.Clicks
		return true
	})
	if clicksByRelation[0] == 0 {
		t.Fatal("no same-intent clicks at all")
	}
	if clicksByRelation[0] <= clicksByRelation[3] {
		t.Errorf("same-intent clicks (%d) should dominate unrelated clicks (%d)",
			clicksByRelation[0], clicksByRelation[3])
	}
}

// The paper reports power-law degree distributions; the generated graph
// must be heavy-tailed: many low-degree queries, a few much larger.
func TestDegreeHeavyTail(t *testing.T) {
	u := smallUniverse(t)
	res, err := Simulate(u, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := clickgraph.QueryDegreeHistogram(res.Graph)
	low := h[1] + h[2]
	total := 0
	maxDeg := 0
	for d, c := range h {
		total += c
		if d > maxDeg {
			maxDeg = d
		}
	}
	if total == 0 {
		t.Fatal("no queries with edges")
	}
	if float64(low)/float64(total) < 0.3 {
		t.Errorf("expected a heavy low-degree tail; degree<=2 fraction = %v", float64(low)/float64(total))
	}
	if maxDeg < 5 {
		t.Errorf("expected some high-degree queries, max degree = %d", maxDeg)
	}
}

// Cross-subtopic links must exist so the graph has a dominant component —
// the paper's log "consists of one huge connected component and several
// smaller subgraphs".
func TestGiantComponent(t *testing.T) {
	u := smallUniverse(t)
	res, err := Simulate(u, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := clickgraph.ComputeStats(res.Graph)
	frac := float64(s.LargestComponent) / float64(s.Queries+s.Ads)
	if frac < 0.25 {
		t.Errorf("largest component holds only %.0f%% of nodes; want a dominant component", frac*100)
	}
}

func TestBidTermsCoverBidders(t *testing.T) {
	u := smallUniverse(t)
	res, err := Simulate(u, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Bids[:min(200, len(res.Bids))] {
		if !res.BidTerms[u.Queries[b.Query].Text] {
			t.Fatalf("bid on %q not reflected in BidTerms", u.Queries[b.Query].Text)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
