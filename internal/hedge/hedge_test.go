package hedge

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// fixedJitter pins the jitter source so delay math is exact.
func fixedJitter(v float64) func() float64 { return func() float64 { return v } }

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 1 * time.Second, Jitter: fixedJitter(1)}
	// Jitter 1 yields the full (uncapped-then-capped) exponential.
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1 * time.Second, 1 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// A huge attempt must cap at Max, not overflow the shift.
	if got := b.Delay(500); got != b.Max {
		t.Errorf("Delay(500) = %v, want the %v cap", got, b.Max)
	}
	if got := b.Delay(0); got != 100*time.Millisecond {
		t.Errorf("Delay(0) = %v, want clamped to attempt 1", got)
	}
	// Jitter 0 yields the equal-jitter lower half.
	b.Jitter = fixedJitter(0)
	if got := b.Delay(3); got != 200*time.Millisecond {
		t.Errorf("Delay(3) at jitter 0 = %v, want half of 400ms", got)
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := Backoff{Jitter: fixedJitter(1)}
	if got := b.Delay(1); got != 100*time.Millisecond {
		t.Errorf("default base Delay(1) = %v, want 100ms", got)
	}
	if got := b.Delay(100); got != 5*time.Second {
		t.Errorf("default cap Delay(100) = %v, want 5s", got)
	}
}

// TestSleepHonorsRetryAfterFloor pins the satellite contract: the wait
// is the max of the local backoff and the server's Retry-After hint —
// neither undercuts the other.
func TestSleepHonorsRetryAfterFloor(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Jitter: fixedJitter(1)}
	start := time.Now()
	if err := b.Sleep(context.Background(), 1, 60*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("slept %v, want at least the 60ms Retry-After floor", elapsed)
	}
	// A floor below the local schedule changes nothing.
	start = time.Now()
	if err := b.Sleep(context.Background(), 1, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("slept %v for a 1ms schedule with no floor", elapsed)
	}
}

func TestSleepRespectsContext(t *testing.T) {
	b := Backoff{Base: time.Minute, Max: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := b.Sleep(ctx, 1, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sleep = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep outlived its context by far")
	}
}

func TestTrackerArming(t *testing.T) {
	tr := &Tracker{Quantile: 0.5, Floor: time.Millisecond}
	if _, ok := tr.Delay(); ok {
		t.Fatal("tracker armed with no samples")
	}
	tr.Record(10 * time.Millisecond)
	tr.Record(20 * time.Millisecond)
	if _, ok := tr.Delay(); ok {
		t.Fatal("tracker armed below MinSamples")
	}
	tr.Record(30 * time.Millisecond)
	d, ok := tr.Delay()
	if !ok {
		t.Fatal("tracker not armed at MinSamples")
	}
	if d != 20*time.Millisecond {
		t.Fatalf("median of 10/20/30ms = %v, want 20ms", d)
	}
}

func TestTrackerFloorAndWindow(t *testing.T) {
	tr := &Tracker{Quantile: 0.5, Floor: 100 * time.Millisecond, Window: 4}
	for i := 0; i < 4; i++ {
		tr.Record(time.Millisecond)
	}
	if d, ok := tr.Delay(); !ok || d != 100*time.Millisecond {
		t.Fatalf("Delay = (%v, %v), want the 100ms floor", d, ok)
	}
	// The window drops the old fast samples: four slow ones displace them.
	for i := 0; i < 4; i++ {
		tr.Record(time.Second)
	}
	if d, _ := tr.Delay(); d != time.Second {
		t.Fatalf("Delay after window turnover = %v, want 1s", d)
	}
}

func TestStatusErrorHint(t *testing.T) {
	se := &StatusError{Code: 503, RetryAfter: 7 * time.Second, Detail: "overloaded"}
	wrapped := fmt.Errorf("backend x: %w", se)
	if got := RetryAfterHint(wrapped); got != 7*time.Second {
		t.Fatalf("RetryAfterHint = %v, want 7s", got)
	}
	if got := RetryAfterHint(errors.New("plain")); got != 0 {
		t.Fatalf("RetryAfterHint(plain) = %v, want 0", got)
	}
	if got := RetryAfterHint(nil); got != 0 {
		t.Fatalf("RetryAfterHint(nil) = %v, want 0", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	h := http.Header{}
	if got := ParseRetryAfter(h); got != 0 {
		t.Fatalf("absent header = %v, want 0", got)
	}
	h.Set("Retry-After", "3")
	if got := ParseRetryAfter(h); got != 3*time.Second {
		t.Fatalf("delta-seconds = %v, want 3s", got)
	}
	h.Set("Retry-After", "0")
	if got := ParseRetryAfter(h); got != 0 {
		t.Fatalf("zero seconds = %v, want 0", got)
	}
	h.Set("Retry-After", "-5")
	if got := ParseRetryAfter(h); got != 0 {
		t.Fatalf("negative seconds = %v, want 0", got)
	}
	h.Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
	if got := ParseRetryAfter(h); got <= 0 || got > 30*time.Second {
		t.Fatalf("HTTP-date = %v, want within (0, 30s]", got)
	}
	h.Set("Retry-After", time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat))
	if got := ParseRetryAfter(h); got != 0 {
		t.Fatalf("past HTTP-date = %v, want 0", got)
	}
	h.Set("Retry-After", "soon")
	if got := ParseRetryAfter(h); got != 0 {
		t.Fatalf("garbage = %v, want 0", got)
	}
}
