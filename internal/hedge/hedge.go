// Package hedge holds the tail-tolerance primitives shared by the
// write-side refresh coordinator (internal/dist) and the read-side
// gateway (internal/route): capped exponential backoff with equal
// jitter, a completed-request latency window that turns a percentile
// into a straggler-hedging threshold (the tail-at-scale idiom), and a
// status error carrying the server's Retry-After hint so retry loops
// can honor the backend's own overload signal instead of only their
// local schedule.
//
// The package is deliberately tiny and dependency-free: both callers
// dispatch HTTP requests under very different contracts (exactly-once
// shard leases vs idempotent replica reads), but the shape of "when do
// I retry, when do I hedge, how long do I wait" is identical — and
// keeping it in one place keeps the two halves of the fleet backing
// off in the same rhythm.
package hedge

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Backoff is a capped exponential backoff with equal jitter: attempt n
// (1-based) waits Base·2^(n-1) capped at Max, scaled into [½, 1]× by
// the jitter source so simultaneous retriers spread out instead of
// stampeding back in lockstep.
type Backoff struct {
	// Base and Max bound the exponential schedule; zero values select
	// 100ms and 5s.
	Base, Max time.Duration
	// Jitter returns values in [0, 1); nil uses math/rand. Tests pin it
	// for determinism.
	Jitter func() float64
}

// Delay returns the jittered wait before the given 1-based attempt.
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 { // <= 0: the shift overflowed
		d = max
	}
	half := d / 2
	jitter := b.Jitter
	if jitter == nil {
		jitter = rand.Float64
	}
	return half + time.Duration(jitter()*float64(d-half))
}

// Sleep waits the attempt's jittered delay — or floor, when the server
// asked for longer via Retry-After (pass RetryAfterHint(lastErr)); the
// larger of the two wins, so a backend's own overload signal is never
// undercut by an eager local schedule. Returns early with the context's
// error if it is done first.
func (b Backoff) Sleep(ctx context.Context, attempt int, floor time.Duration) error {
	d := b.Delay(attempt)
	if floor > d {
		d = floor
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Tracker keeps a bounded window of completed-request latencies and
// turns a configured percentile of them into the delay after which an
// outstanding request counts as a straggler worth hedging.
type Tracker struct {
	// Quantile picks the completed-request latency percentile (default
	// 0.95); Floor is the minimum hedge delay (default 250ms) so a burst
	// of fast completions cannot arm hair-trigger hedging.
	Quantile float64
	Floor    time.Duration
	// MinSamples is how many completions must be recorded before Delay
	// reports ok (default 3) — before that there is no latency signal to
	// call anything a straggler against. Window bounds the sample buffer
	// (default 64).
	MinSamples int
	Window     int

	mu      sync.Mutex
	samples []time.Duration
}

// Record files one completed-request latency.
func (t *Tracker) Record(d time.Duration) {
	window := t.Window
	if window <= 0 {
		window = 64
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples = append(t.samples, d)
	if len(t.samples) > window {
		t.samples = t.samples[len(t.samples)-window:]
	}
}

// Delay returns when an outstanding request becomes a straggler: the
// configured percentile of recorded latencies, floored at Floor. ok is
// false until MinSamples completions have been recorded.
func (t *Tracker) Delay() (delay time.Duration, ok bool) {
	min := t.MinSamples
	if min <= 0 {
		min = 3
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) < min {
		return 0, false
	}
	q := t.Quantile
	if q <= 0 || q >= 1 {
		q = 0.95
	}
	floor := t.Floor
	if floor <= 0 {
		floor = 250 * time.Millisecond
	}
	sorted := append([]time.Duration(nil), t.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	d := sorted[int(float64(len(sorted)-1)*q)]
	if d < floor {
		d = floor
	}
	return d, true
}

// StatusError is a non-2xx HTTP reply treated as a dispatch failure,
// carrying the server's Retry-After hint (zero when the reply had
// none) so the retry loop can honor it.
type StatusError struct {
	Code       int
	RetryAfter time.Duration
	Detail     string
}

func (e *StatusError) Error() string {
	s := fmt.Sprintf("answered %d", e.Code)
	if e.RetryAfter > 0 {
		s += fmt.Sprintf(" (Retry-After %s)", e.RetryAfter)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// RetryAfterHint extracts the Retry-After duration from an error chain
// containing a StatusError; zero when there is none. Feed the result to
// Backoff.Sleep's floor so the max of the local schedule and the
// server's hint is waited.
func RetryAfterHint(err error) time.Duration {
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// ParseRetryAfter reads an HTTP Retry-After header in either of its
// forms (delta-seconds or HTTP-date); zero when absent or unparseable.
func ParseRetryAfter(h http.Header) time.Duration {
	v := strings.TrimSpace(h.Get("Retry-After"))
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}
