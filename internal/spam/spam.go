// Package spam implements the click-spam robustness extension the
// Simrank++ paper defers to future work (§11): "Spam clicks can mislead
// our techniques and thus spam-resistant variations of our techniques
// would be useful."
//
// It injects a configurable click-fraud campaign into a click graph —
// a spammer inflating clicks from hijacked queries onto promoted ads —
// and measures how much each similarity method's rewrites move.
//
// The measurement surfaces a mitigation the paper's §8 design already
// contains without advertising it: on raw click counts, a farm's volume
// explodes the weight variance at the promoted ad, and weighted
// SimRank's spread factor e^{-variance} suppresses exactly those
// transitions — top-5 rewrites of hijacked queries keep ~84% overlap
// with the clean graph, versus ~4% with the spread factor disabled.
// The expected-click-rate channel, by contrast, is genuinely fooled
// (~38% overlap): a click farm clicks nearly everything it requests, so
// its estimated rate is high but not anomalous, and rates live on a
// scale where the variance penalty is negligible. Spam resistance
// therefore argues for walking on counts WITH the spread factor, not
// for the rate channel the paper's precision experiments favor.
package spam

import (
	"fmt"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/sparse"
	"simrankpp/internal/workload"
)

// Campaign describes an injected click-fraud campaign.
type Campaign struct {
	// PromotedAds is how many existing ads the spammer promotes.
	PromotedAds int
	// HijackedQueries is how many existing queries each promoted ad
	// receives fraudulent clicks from.
	HijackedQueries int
	// ClicksPerEdge is the fraudulent click volume per (query, ad) pair.
	ClicksPerEdge int64
	// FraudCTR is the click-through rate of the fraudulent traffic:
	// impressions are ClicksPerEdge / FraudCTR. Real click farms click
	// nearly everything they are shown, so the default is high — which
	// is exactly why the rate channel stays informative: the farm's
	// rate estimate is plausible but its raw counts are enormous.
	FraudCTR float64
	// Seed selects which ads and queries are hit.
	Seed uint64
}

// DefaultCampaign returns a modest farm: 5 ads × 4 queries × 500 clicks.
func DefaultCampaign() Campaign {
	return Campaign{
		PromotedAds:     5,
		HijackedQueries: 4,
		ClicksPerEdge:   500,
		FraudCTR:        0.9,
		Seed:            1337,
	}
}

// Validate reports whether the campaign is usable.
func (c Campaign) Validate() error {
	if c.PromotedAds < 1 || c.HijackedQueries < 1 {
		return fmt.Errorf("spam: campaign needs >= 1 promoted ad and hijacked query, got %d/%d",
			c.PromotedAds, c.HijackedQueries)
	}
	if c.ClicksPerEdge < 1 {
		return fmt.Errorf("spam: ClicksPerEdge must be >= 1, got %d", c.ClicksPerEdge)
	}
	if !(c.FraudCTR > 0 && c.FraudCTR <= 1) {
		return fmt.Errorf("spam: FraudCTR must be in (0,1], got %v", c.FraudCTR)
	}
	return nil
}

// Injection records what was injected.
type Injection struct {
	// Graph is the polluted graph.
	Graph *clickgraph.Graph
	// Edges are the injected (query id, ad id) pairs in the ORIGINAL
	// graph's id space (ids are preserved by the rebuild).
	Edges [][2]int
	// Queries are the hijacked query ids.
	Queries []int
}

// Inject adds the campaign's fraudulent edges to a copy of g. Promoted
// ads and hijacked queries are drawn uniformly from the existing nodes;
// a (query, ad) pair already connected gets its weights inflated, which
// is what fraud on an existing edge looks like.
func Inject(g *clickgraph.Graph, c Campaign) (*Injection, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if g.NumQueries() == 0 || g.NumAds() == 0 {
		return nil, fmt.Errorf("spam: empty graph")
	}
	r := workload.NewRNG(c.Seed)
	b := clickgraph.NewBuilder()
	for q := 0; q < g.NumQueries(); q++ {
		b.AddQuery(g.Query(q))
	}
	for a := 0; a < g.NumAds(); a++ {
		b.AddAd(g.Ad(a))
	}
	var err error
	g.Edges(func(q, a int, w clickgraph.EdgeWeights) bool {
		err = b.AddEdge(g.Query(q), g.Ad(a), w)
		return err == nil
	})
	if err != nil {
		return nil, err
	}

	inj := &Injection{}
	hijacked := map[int]bool{}
	impressions := int64(float64(c.ClicksPerEdge) / c.FraudCTR)
	if impressions < c.ClicksPerEdge {
		impressions = c.ClicksPerEdge
	}
	for i := 0; i < c.PromotedAds; i++ {
		ad := r.Intn(g.NumAds())
		for j := 0; j < c.HijackedQueries; j++ {
			q := r.Intn(g.NumQueries())
			if err := b.AddEdge(g.Query(q), g.Ad(ad), clickgraph.EdgeWeights{
				Impressions:       impressions,
				Clicks:            c.ClicksPerEdge,
				ExpectedClickRate: c.FraudCTR,
			}); err != nil {
				return nil, err
			}
			inj.Edges = append(inj.Edges, [2]int{q, ad})
			if !hijacked[q] {
				hijacked[q] = true
				inj.Queries = append(inj.Queries, q)
			}
		}
	}
	inj.Graph = b.Build()
	return inj, nil
}

// TopKOverlap returns |A ∩ B| / k for two top-k rewrite lists, the
// stability measure of the robustness report.
func TopKOverlap(a, b []sparse.Scored, k int) float64 {
	if k <= 0 {
		return 0
	}
	set := make(map[int]bool, k)
	for i, s := range a {
		if i == k {
			break
		}
		set[s.Node] = true
	}
	hits := 0
	for i, s := range b {
		if i == k {
			break
		}
		if set[s.Node] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// Report summarizes rewrite stability under a campaign.
type Report struct {
	Campaign Campaign
	// MeanOverlap[label] is the mean top-k overlap between clean and
	// polluted rewrites over the probed queries, per configuration.
	MeanOverlap map[string]float64
	// Probed is how many queries were measured.
	Probed int
	K      int
}

// Probe is one similarity configuration to stress.
type Probe struct {
	Label  string
	Config core.Config
}

// DefaultProbes compares raw-click weighting against the paper's
// expected-click-rate weighting, with simple SimRank as the
// structure-only control.
func DefaultProbes() []Probe {
	clicks := core.DefaultConfig().WithVariant(core.Weighted)
	clicks.Channel = core.ChannelClicks
	rate := core.DefaultConfig().WithVariant(core.Weighted)
	rate.Channel = core.ChannelRate
	return []Probe{
		{Label: "weighted/clicks", Config: clicks},
		{Label: "weighted/rate", Config: rate},
		{Label: "simple", Config: core.DefaultConfig()},
	}
}

// Measure runs each probe on the clean and polluted graphs and reports
// the mean top-k rewrite overlap over the hijacked queries (the ones the
// campaign directly distorts). Higher overlap = more spam-robust.
func Measure(clean *clickgraph.Graph, inj *Injection, probes []Probe, k int) (*Report, error) {
	if k < 1 {
		return nil, fmt.Errorf("spam: k must be >= 1, got %d", k)
	}
	rep := &Report{MeanOverlap: map[string]float64{}, K: k}
	for _, p := range probes {
		before, err := core.Run(clean, p.Config)
		if err != nil {
			return nil, fmt.Errorf("spam: probe %s on clean graph: %w", p.Label, err)
		}
		after, err := core.Run(inj.Graph, p.Config)
		if err != nil {
			return nil, fmt.Errorf("spam: probe %s on polluted graph: %w", p.Label, err)
		}
		sum, n := 0.0, 0
		for _, q := range inj.Queries {
			a := before.TopRewrites(q, k)
			if len(a) == 0 {
				continue
			}
			sum += TopKOverlap(a, after.TopRewrites(q, k), k)
			n++
		}
		if n > 0 {
			rep.MeanOverlap[p.Label] = sum / float64(n)
		}
		rep.Probed = n
	}
	return rep, nil
}
