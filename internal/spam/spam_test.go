package spam

import (
	"testing"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/sparse"
	"simrankpp/internal/sponsored"
	"simrankpp/internal/workload"
)

func cleanGraph(t *testing.T) *clickgraph.Graph {
	t.Helper()
	ucfg := workload.DefaultUniverseConfig()
	ucfg.Categories = 4
	ucfg.SubtopicsPerCategory = 3
	ucfg.IntentsPerSubtopic = 3
	u, err := workload.BuildUniverse(ucfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := sponsored.DefaultConfig()
	scfg.Sessions = 60000
	res, err := sponsored.Simulate(u, scfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestCampaignValidation(t *testing.T) {
	g := clickgraph.Fig3()
	cases := []func(*Campaign){
		func(c *Campaign) { c.PromotedAds = 0 },
		func(c *Campaign) { c.HijackedQueries = 0 },
		func(c *Campaign) { c.ClicksPerEdge = 0 },
		func(c *Campaign) { c.FraudCTR = 0 },
		func(c *Campaign) { c.FraudCTR = 1.5 },
	}
	for i, mut := range cases {
		c := DefaultCampaign()
		mut(&c)
		if _, err := Inject(g, c); err == nil {
			t.Errorf("case %d: invalid campaign accepted", i)
		}
	}
	if _, err := Inject(clickgraph.NewBuilder().Build(), DefaultCampaign()); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestInjectAddsFraud(t *testing.T) {
	g := cleanGraph(t)
	c := DefaultCampaign()
	inj, err := Inject(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Edges) != c.PromotedAds*c.HijackedQueries {
		t.Fatalf("injected %d edges want %d", len(inj.Edges), c.PromotedAds*c.HijackedQueries)
	}
	// Node ids preserved: names must align.
	if inj.Graph.NumQueries() != g.NumQueries() || inj.Graph.NumAds() != g.NumAds() {
		t.Fatal("injection changed node population")
	}
	for q := 0; q < g.NumQueries(); q++ {
		if inj.Graph.Query(q) != g.Query(q) {
			t.Fatal("query id mapping changed")
		}
	}
	// Fraud edges carry the campaign's volume.
	for _, e := range inj.Edges {
		w, ok := inj.Graph.EdgeWeightsOf(e[0], e[1])
		if !ok {
			t.Fatalf("injected edge %v missing", e)
		}
		if w.Clicks < c.ClicksPerEdge {
			t.Errorf("edge %v has %d clicks, want >= %d", e, w.Clicks, c.ClicksPerEdge)
		}
	}
	// Determinism.
	inj2, err := Inject(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj2.Edges) != len(inj.Edges) || inj2.Edges[0] != inj.Edges[0] {
		t.Error("injection not deterministic")
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []sparse.Scored{{Node: 1}, {Node: 2}, {Node: 3}}
	b := []sparse.Scored{{Node: 3}, {Node: 2}, {Node: 9}}
	if got := TopKOverlap(a, b, 3); got != 2.0/3.0 {
		t.Errorf("overlap = %v want 2/3", got)
	}
	if got := TopKOverlap(a, a, 3); got != 1 {
		t.Errorf("self overlap = %v want 1", got)
	}
	if got := TopKOverlap(a, nil, 3); got != 0 {
		t.Errorf("empty overlap = %v want 0", got)
	}
	if got := TopKOverlap(a, b, 0); got != 0 {
		t.Errorf("k=0 overlap = %v want 0", got)
	}
}

// The robustness finding this package documents (see the package doc):
// the e^{-variance} spread factor makes count-channel weighted SimRank
// spam-robust, while disabling it (or walking on estimated rates, which
// a click farm fools) leaves rewrites fragile.
func TestSpreadFactorIsSpamDamper(t *testing.T) {
	g := cleanGraph(t)
	c := DefaultCampaign()
	c.ClicksPerEdge = 2000 // a heavy farm, to separate the channels
	inj, err := Inject(g, c)
	if err != nil {
		t.Fatal(err)
	}
	noSpread := core.DefaultConfig().WithVariant(core.Weighted)
	noSpread.Channel = core.ChannelClicks
	noSpread.DisableSpread = true
	probes := append(DefaultProbes(), Probe{Label: "weighted/clicks/no-spread", Config: noSpread})
	rep, err := Measure(g, inj, probes, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probed == 0 {
		t.Skip("no hijacked query had clean rewrites")
	}
	withSpread := rep.MeanOverlap["weighted/clicks"]
	without := rep.MeanOverlap["weighted/clicks/no-spread"]
	rate := rep.MeanOverlap["weighted/rate"]
	if !(withSpread > without) {
		t.Errorf("spread factor should stabilize count-channel rewrites: with %v, without %v",
			withSpread, without)
	}
	if !(withSpread > rate) {
		t.Errorf("count channel with spread (%v) should beat the fooled rate channel (%v)",
			withSpread, rate)
	}
	for label, v := range rep.MeanOverlap {
		if v < 0 || v > 1 {
			t.Errorf("%s overlap %v outside [0,1]", label, v)
		}
	}
}

func TestMeasureValidation(t *testing.T) {
	g := cleanGraph(t)
	inj, err := Inject(g, DefaultCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(g, inj, DefaultProbes(), 0); err == nil {
		t.Error("k=0 accepted")
	}
	bad := []Probe{{Label: "bad", Config: core.Config{}}}
	if _, err := Measure(g, inj, bad, 5); err == nil {
		t.Error("invalid probe config accepted")
	}
}
