// Papertables prints Tables 1-4 of the Simrank++ paper from the Figure
// 3-4 toy graphs. The numbers of Tables 3 and 4 match the paper exactly;
// Table 2's graph is reconstructed from the constraints in the text (the
// original figure is an image), so its scores are qualitatively — not
// numerically — comparable.
//
//	go run ./examples/papertables
package main

import (
	"fmt"
	"log"

	"simrankpp/internal/experiments"
)

func main() {
	fmt.Println(experiments.Table1())
	t2, err := experiments.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2)
	t3, err := experiments.Table3(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t3)
	t4, err := experiments.Table4(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t4)
}
