// Sponsoredsearch runs the full Figure 1-2 system end to end: generate a
// synthetic advertiser/query universe, simulate two weeks of sponsored
// search traffic to obtain a historical click graph, compute weighted
// Simrank++ rewrites in the front-end, and show how rewriting lets the
// back-end serve ads for a query that has no direct bids.
//
//	go run ./examples/sponsoredsearch
package main

import (
	"fmt"
	"log"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
	"simrankpp/internal/rewrite"
	"simrankpp/internal/sponsored"
	"simrankpp/internal/workload"
)

func main() {
	// The latent ground truth: an intent hierarchy with queries and ads.
	ucfg := workload.DefaultUniverseConfig()
	ucfg.Categories = 8
	u, err := workload.BuildUniverse(ucfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universe: %d intents, %d queries, %d ads\n",
		len(u.Intents), len(u.Queries), len(u.Ads))

	// The historical log: bids, auctions, position-biased clicks.
	scfg := sponsored.DefaultConfig()
	scfg.Sessions = 300000
	res, err := sponsored.Simulate(u, scfg)
	if err != nil {
		log.Fatal(err)
	}
	g := res.Graph
	st := clickgraph.ComputeStats(g)
	fmt.Printf("click graph: %d queries, %d ads, %d edges (%d sessions served)\n\n",
		st.Queries, st.Ads, st.Edges, res.Sessions)

	// The front-end: weighted Simrank++ over the click graph, with the
	// evaluation pipeline's stem dedup and bid-term filtering.
	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.PruneEpsilon = 1e-5
	simres, err := core.Run(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pipe := rewrite.NewPipeline(g, res.BidTerms)
	src := &rewrite.ResultSource{Index: simres}

	// Find a query in the graph whose own text has no bids — the case
	// the paper's architecture exists for: without rewrites the back-end
	// has nothing to auction.
	target := -1
	for q := 0; q < g.NumQueries() && target < 0; q++ {
		if !res.BidTerms[g.Query(q)] && g.QueryDegree(q) > 0 {
			target = q
		}
	}
	if target < 0 {
		// Every graph query saw bids in this run; fall back to any query.
		target = 0
	}
	fmt.Printf("incoming query: %q (has direct bids: %v)\n",
		g.Query(target), res.BidTerms[g.Query(target)])
	cands, err := pipe.Rewrite(src, target)
	if err != nil {
		log.Fatal(err)
	}
	if len(cands) == 0 {
		fmt.Println("no rewrites survived filtering")
		return
	}
	fmt.Println("front-end rewrites (bid-filtered, stem-deduped):")
	for i, c := range cands {
		fmt.Printf("  %d. %-34s score %.4f\n", i+1, c.Text, c.Score)
	}

	// The back-end: collect the ads with bids on the rewrites — these
	// are now auctionable for the original query.
	adSet := map[int]bool{}
	for _, c := range cands {
		uq, ok := u.QueryByText(c.Text)
		if !ok {
			continue
		}
		for _, b := range res.Bids {
			if b.Query == uq.ID {
				adSet[b.Ad] = true
			}
		}
	}
	fmt.Printf("\nback-end: %d distinct ads now auctionable for %q via rewrites\n",
		len(adSet), g.Query(target))
	shown := 0
	for ad := range adSet {
		fmt.Printf("  - %s\n", u.Ads[ad].Name)
		shown++
		if shown == 5 {
			break
		}
	}
}
