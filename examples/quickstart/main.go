// Quickstart: build a small click graph, compute all three Simrank++
// similarity variants, and print rewrites for one query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
)

func main() {
	// 1. Build a click graph. An edge records that an ad was clicked for
	//    a query, with impressions, clicks, and the position-adjusted
	//    expected click rate.
	b := clickgraph.NewBuilder()
	edges := []struct {
		query, ad string
		impr      int64
		clicks    int64
		rate      float64
	}{
		{"camera", "hp.com", 100, 20, 0.20},
		{"camera", "bestbuy.com", 150, 30, 0.21},
		{"digital camera", "hp.com", 80, 18, 0.22},
		{"digital camera", "bestbuy.com", 90, 17, 0.19},
		{"digital camera", "dpreview.com", 40, 6, 0.15},
		{"pc", "hp.com", 120, 12, 0.10},
		{"tv", "bestbuy.com", 70, 9, 0.13},
		{"tv", "dpreview.com", 30, 4, 0.13},
		{"flower", "teleflora.com", 60, 21, 0.35},
		{"flower", "orchids.com", 50, 18, 0.36},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.query, e.ad, clickgraph.EdgeWeights{
			Impressions: e.impr, Clicks: e.clicks, ExpectedClickRate: e.rate,
		}); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	// 2. Run each similarity variant. DefaultConfig is the paper's
	//    setting: C1 = C2 = 0.8, 7 iterations.
	for _, variant := range []core.Variant{core.Simple, core.Evidence, core.Weighted} {
		cfg := core.DefaultConfig().WithVariant(variant)
		res, err := core.Run(g, cfg)
		if err != nil {
			log.Fatal(err)
		}

		// 3. Read off rewrites for "camera".
		camera, ok := g.QueryID("camera")
		if !ok {
			log.Fatal("camera not in graph")
		}
		fmt.Printf("%s — rewrites for %q:\n", variant, "camera")
		for i, s := range res.TopRewrites(camera, 3) {
			fmt.Printf("  %d. %-18s %.4f\n", i+1, g.Query(s.Node), s.Score)
		}
		fmt.Println()
	}

	// 4. The online path: score a single query against its neighborhood
	//    without an all-pairs run.
	camera, _ := g.QueryID("camera")
	local, err := core.LocalSimilarities(g, camera, core.DefaultConfig().WithVariant(core.Weighted), core.DefaultLocalConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("online (neighborhood) weighted rewrites for \"camera\":")
	for i, s := range local {
		if i == 3 {
			break
		}
		fmt.Printf("  %d. %-18s %.4f\n", i+1, g.Query(s.Node), s.Score)
	}
}
