// Collabfilter applies the Simrank++ measures outside sponsored search —
// the transfer the paper anticipates in §11: "we suspect that the
// weighted and evidence-based Simrank methods could be of use in other
// applications that exploit bi-partite graphs. We plan to experiment with
// these schemes in other domains, including collaborative filtering."
//
// Here the bipartite graph is users × movies with ratings as weights:
// users play the role of queries ("recommending" movies by rating them),
// and user-user similarity identifies taste neighbors whose ratings
// predict recommendations.
//
//	go run ./examples/collabfilter
package main

import (
	"fmt"
	"log"
	"sort"

	"simrankpp/internal/clickgraph"
	"simrankpp/internal/core"
)

// rating becomes the click-count weight; the 1-5 scale maps to an
// expected-click-rate-style weight in (0, 1].
func rateOf(stars int) float64 { return float64(stars) / 5 }

func main() {
	b := clickgraph.NewBuilder()
	type r struct {
		user  string
		movie string
		stars int
	}
	ratings := []r{
		{"ana", "heat", 5}, {"ana", "ronin", 4}, {"ana", "drive", 5},
		{"bob", "heat", 4}, {"bob", "ronin", 5}, {"bob", "drive", 4},
		{"carol", "amelie", 5}, {"carol", "brazil", 4}, {"carol", "drive", 2},
		{"dave", "amelie", 4}, {"dave", "brazil", 5},
		{"erin", "heat", 2}, {"erin", "amelie", 5}, {"erin", "brazil", 3},
		{"frank", "ronin", 5}, {"frank", "heat", 5},
	}
	for _, x := range ratings {
		if err := b.AddEdge(x.user, x.movie, clickgraph.EdgeWeights{
			Impressions:       5,
			Clicks:            int64(x.stars),
			ExpectedClickRate: rateOf(x.stars),
		}); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	cfg := core.DefaultConfig().WithVariant(core.Weighted)
	cfg.Iterations = 10
	res, err := core.Run(g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// User-user similarity: taste neighborhoods.
	fmt.Println("taste neighbors (weighted Simrank++ on the ratings graph):")
	for _, user := range []string{"ana", "carol"} {
		uid, _ := g.QueryID(user)
		fmt.Printf("  %s:", user)
		for _, s := range res.TopRewrites(uid, 2) {
			fmt.Printf("  %s (%.3f)", g.Query(s.Node), s.Score)
		}
		fmt.Println()
	}

	// Movie-movie similarity comes from the ad side of the same run.
	fmt.Println("\nsimilar movies (ad-side scores):")
	for _, movie := range []string{"heat", "amelie"} {
		mid, _ := g.AdID(movie)
		type scored struct {
			name string
			s    float64
		}
		var sims []scored
		for other := 0; other < g.NumAds(); other++ {
			if other != mid {
				sims = append(sims, scored{g.Ad(other), res.AdSim(mid, other)})
			}
		}
		sort.Slice(sims, func(i, j int) bool { return sims[i].s > sims[j].s })
		fmt.Printf("  %s:", movie)
		for _, s := range sims[:2] {
			fmt.Printf("  %s (%.3f)", s.name, s.s)
		}
		fmt.Println()
	}

	// Simple recommendation: movies rated highly by the nearest taste
	// neighbor that the target user has not rated.
	target := "frank"
	tid, _ := g.QueryID(target)
	top := res.TopRewrites(tid, 1)
	if len(top) == 0 {
		fmt.Println("\nno neighbor found for", target)
		return
	}
	neighbor := top[0].Node
	rated := map[int]bool{}
	ads, _ := g.AdsOf(tid)
	for _, a := range ads {
		rated[a] = true
	}
	fmt.Printf("\nrecommendations for %s (via %s):\n", target, g.Query(neighbor))
	nAds, nRates := g.AdsOf(neighbor)
	type rec struct {
		movie string
		score float64
	}
	var recs []rec
	for i, a := range nAds {
		if !rated[a] {
			recs = append(recs, rec{g.Ad(a), nRates[i]})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })
	for _, x := range recs {
		fmt.Printf("  %-8s (neighbor's weight %.2f)\n", x.movie, x.score)
	}
}
